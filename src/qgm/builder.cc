#include "qgm/builder.h"

#include <algorithm>

#include "common/str_util.h"
#include "sql/parser.h"

namespace xnf::qgm {

namespace {

bool IsAggName(const std::string& lower_name) {
  return lower_name == "count" || lower_name == "sum" || lower_name == "avg" ||
         lower_name == "min" || lower_name == "max";
}

bool IsComparison(sql::BinOp op) {
  switch (op) {
    case sql::BinOp::kEq:
    case sql::BinOp::kNe:
    case sql::BinOp::kLt:
    case sql::BinOp::kLe:
    case sql::BinOp::kGt:
    case sql::BinOp::kGe:
      return true;
    default:
      return false;
  }
}

// Splits an AND tree into conjuncts.
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr->kind == Expr::Kind::kBinary && expr->bin_op == sql::BinOp::kAnd) {
    SplitConjuncts(std::move(expr->args[0]), out);
    SplitConjuncts(std::move(expr->args[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

Type WidenNumeric(Type a, Type b) {
  if (a == Type::kDouble || b == Type::kDouble) return Type::kDouble;
  return Type::kInt;
}

}  // namespace

Result<Type> BinaryResultType(sql::BinOp op, Type left, Type right) {
  auto numeric = [](Type t) {
    return t == Type::kInt || t == Type::kDouble || t == Type::kNull;
  };
  switch (op) {
    case sql::BinOp::kAnd:
    case sql::BinOp::kOr:
      return Type::kBool;
    case sql::BinOp::kEq:
    case sql::BinOp::kNe:
    case sql::BinOp::kLt:
    case sql::BinOp::kLe:
    case sql::BinOp::kGt:
    case sql::BinOp::kGe: {
      // Comparable: same family, or either side NULL-typed.
      bool ok = left == Type::kNull || right == Type::kNull ||
                (numeric(left) && numeric(right)) || left == right;
      if (!ok) {
        return Status::InvalidArgument(
            std::string("cannot compare ") + TypeName(left) + " with " +
            TypeName(right));
      }
      return Type::kBool;
    }
    case sql::BinOp::kAdd:
    case sql::BinOp::kSub:
    case sql::BinOp::kMul:
    case sql::BinOp::kDiv:
    case sql::BinOp::kMod:
      if (!numeric(left) || !numeric(right)) {
        return Status::InvalidArgument(
            std::string("arithmetic requires numeric operands, got ") +
            TypeName(left) + " and " + TypeName(right));
      }
      if (left == Type::kNull && right == Type::kNull) return Type::kInt;
      if (left == Type::kNull) return right;
      if (right == Type::kNull) return left;
      return WidenNumeric(left, right);
    case sql::BinOp::kConcat:
      if ((left != Type::kString && left != Type::kNull) ||
          (right != Type::kString && right != Type::kNull)) {
        return Status::InvalidArgument("|| requires string operands");
      }
      return Type::kString;
  }
  return Status::Internal("unhandled binary operator");
}

// --- scopes ---------------------------------------------------------------

struct Builder::Scope {
  struct Entry {
    std::string alias;  // "" when the source carries its own qualifiers
    Schema schema;
    int quantifier = -1;
  };
  std::vector<Entry> entries;
  Scope* parent = nullptr;
  // Sink for correlated references that resolve above this scope: each new
  // binding expression (in the parent scope's terms) is appended here; the
  // reference becomes kParam(index). Null only for root scopes.
  std::vector<ExprPtr>* bindings = nullptr;
};

struct Builder::ExprCtx {
  Scope* scope = nullptr;
  QueryGraph* graph = nullptr;
  Box* box = nullptr;        // box under construction (for aggs/subqueries)
  bool allow_aggs = false;   // true in SELECT list / HAVING / ORDER BY
  bool in_agg = false;       // inside an aggregate argument
};

// --- entry points ----------------------------------------------------------

Result<QueryGraph> Builder::Build(const sql::SelectStmt& stmt) {
  QueryGraph graph;
  XNF_ASSIGN_OR_RETURN(graph.root,
                       BuildSelectChain(stmt, &graph, nullptr, nullptr));
  return graph;
}

Result<ExprPtr> Builder::BuildScalar(const sql::Expr& expr,
                                     const Schema& schema,
                                     const std::string& alias) {
  QueryGraph graph;
  Box box;
  box.kind = Box::Kind::kSelect;
  Quantifier q;
  q.input_box = -1;
  q.base_table = alias;
  q.alias = alias;
  q.schema = schema.WithQualifier(ToLower(alias));
  box.quantifiers.push_back(q);

  Scope scope;
  scope.entries.push_back(
      Scope::Entry{ToLower(alias), box.quantifiers[0].schema, 0});
  ExprCtx ctx;
  ctx.scope = &scope;
  ctx.graph = &graph;
  ctx.box = &box;
  ctx.allow_aggs = false;
  XNF_ASSIGN_OR_RETURN(ExprPtr out, BuildExpr(expr, &ctx));
  if (!box.subqueries.empty()) {
    return Status::NotSupported("subqueries are not supported here");
  }
  return out;
}

namespace {

// Merges the schemas of two set-operation branches: same arity, types
// widened (int/double) or errored.
Result<Schema> MergeSetOpSchemas(const Schema& left, const Schema& right) {
  if (left.size() != right.size()) {
    return Status::InvalidArgument(
        "set operation branches have different numbers of columns");
  }
  Schema out = left;
  for (size_t c = 0; c < out.size(); ++c) {
    Type a = out.column(c).type;
    Type b = right.column(c).type;
    if (a == b || b == Type::kNull) continue;
    if (a == Type::kNull) {
      out.column(c).type = b;
    } else if ((a == Type::kInt || a == Type::kDouble) &&
               (b == Type::kInt || b == Type::kDouble)) {
      out.column(c).type = Type::kDouble;
    } else {
      return Status::InvalidArgument(
          "set operation branch column types differ");
    }
  }
  return out;
}

}  // namespace

Result<int> Builder::BuildSelectChain(const sql::SelectStmt& stmt,
                                      QueryGraph* graph, Scope* parent,
                                      std::vector<ExprPtr>* bindings) {
  // Left-associative chain of set operations (UNION [ALL] / INTERSECT /
  // EXCEPT); each link becomes one kUnion box over two inputs.
  XNF_ASSIGN_OR_RETURN(int left,
                       BuildSelectBox(stmt, graph, parent, bindings));
  const sql::SelectStmt* link = &stmt;
  while (link->union_next != nullptr) {
    const sql::SelectStmt* next = link->union_next.get();
    XNF_ASSIGN_OR_RETURN(int right,
                         BuildSelectBox(*next, graph, parent, bindings));
    auto box = std::make_unique<Box>();
    box->kind = Box::Kind::kUnion;
    box->union_inputs = {left, right};
    switch (link->set_op) {
      case sql::SelectStmt::SetOp::kUnionAll:
        box->set_op = Box::SetOpKind::kUnionAll;
        box->union_all = true;
        break;
      case sql::SelectStmt::SetOp::kUnion:
        box->set_op = Box::SetOpKind::kUnionDistinct;
        break;
      case sql::SelectStmt::SetOp::kIntersect:
        box->set_op = Box::SetOpKind::kIntersect;
        break;
      case sql::SelectStmt::SetOp::kExcept:
        box->set_op = Box::SetOpKind::kExcept;
        break;
    }
    XNF_ASSIGN_OR_RETURN(
        box->values_schema,
        MergeSetOpSchemas(graph->box(left)->OutputSchema(),
                          graph->box(right)->OutputSchema()));
    left = graph->AddBox(std::move(box));
    link = next;
  }
  return left;
}

// --- FROM clause -----------------------------------------------------------

Status Builder::AddNamedSource(const std::string& name,
                               const std::string& alias, QueryGraph* graph,
                               Box* box, Scope* scope) {
  std::string key = ToLower(name);
  std::string effective_alias = ToLower(alias.empty() ? name : alias);

  // (1) Extra resolver (temp tables / XNF view components).
  if (extra_) {
    XNF_ASSIGN_OR_RETURN(const ResultSet* ext, extra_(key));
    if (ext != nullptr) {
      auto values = std::make_unique<Box>();
      values->kind = Box::Kind::kValues;
      values->values_schema = ext->schema;
      values->values_ext = ext;
      int vb = graph->AddBox(std::move(values));
      Quantifier q;
      q.input_box = vb;
      q.alias = effective_alias;
      q.schema = ext->schema.WithQualifier(effective_alias);
      box->quantifiers.push_back(std::move(q));
      scope->entries.push_back(Scope::Entry{
          effective_alias, box->quantifiers.back().schema,
          static_cast<int>(box->quantifiers.size() - 1)});
      return Status::Ok();
    }
  }

  // (2) Base table.
  if (TableInfo* table = catalog_->GetTable(key); table != nullptr) {
    Quantifier q;
    q.input_box = -1;
    q.base_table = key;
    q.alias = effective_alias;
    q.schema = table->schema.WithQualifier(effective_alias);
    box->quantifiers.push_back(std::move(q));
    scope->entries.push_back(
        Scope::Entry{effective_alias, box->quantifiers.back().schema,
                     static_cast<int>(box->quantifiers.size() - 1)});
    return Status::Ok();
  }

  // (3) SQL view: parse and expand in place (view merging happens later in
  // the rewrite phase).
  if (const ViewInfo* view = catalog_->GetView(key); view != nullptr) {
    if (view->is_xnf) {
      return Status::InvalidArgument(
          "'" + name +
          "' is an XNF composite-object view; reference it with OUT OF or as "
          "view.component");
    }
    for (const std::string& v : view_stack_) {
      if (v == key) {
        return Status::InvalidArgument("cyclic view definition involving '" +
                                       name + "'");
      }
    }
    sql::Parser parser(view->definition);
    XNF_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> body,
                         parser.ParseSelect());
    view_stack_.push_back(key);
    Result<int> sub = BuildSelectChain(*body, graph, nullptr, nullptr);
    view_stack_.pop_back();
    if (!sub.ok()) return sub.status();
    Quantifier q;
    q.input_box = *sub;
    q.alias = effective_alias;
    q.schema = graph->box(*sub)->OutputSchema().WithQualifier(effective_alias);
    box->quantifiers.push_back(std::move(q));
    scope->entries.push_back(
        Scope::Entry{effective_alias, box->quantifiers.back().schema,
                     static_cast<int>(box->quantifiers.size() - 1)});
    return Status::Ok();
  }

  return Status::NotFound("table or view '" + name + "' not found");
}

Status Builder::AddTableRef(const sql::TableRef& ref, QueryGraph* graph,
                            Box* box, Scope* scope) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kNamed:
      return AddNamedSource(ref.name, ref.alias, graph, box, scope);
    case sql::TableRef::Kind::kSubquery: {
      XNF_ASSIGN_OR_RETURN(
          int sub, BuildSelectChain(*ref.subquery, graph, nullptr, nullptr));
      std::string alias = ToLower(ref.alias);
      Quantifier q;
      q.input_box = sub;
      q.alias = alias;
      q.schema = graph->box(sub)->OutputSchema().WithQualifier(alias);
      box->quantifiers.push_back(std::move(q));
      scope->entries.push_back(
          Scope::Entry{alias, box->quantifiers.back().schema,
                       static_cast<int>(box->quantifiers.size() - 1)});
      return Status::Ok();
    }
    case sql::TableRef::Kind::kJoin: {
      if (ref.join_type == sql::JoinType::kInner) {
        // Flatten: both sides become quantifiers, ON becomes predicates.
        XNF_RETURN_IF_ERROR(AddTableRef(*ref.left, graph, box, scope));
        XNF_RETURN_IF_ERROR(AddTableRef(*ref.right, graph, box, scope));
        ExprCtx ctx;
        ctx.scope = scope;
        ctx.graph = graph;
        ctx.box = box;
        XNF_ASSIGN_OR_RETURN(ExprPtr on, BuildExpr(*ref.on, &ctx));
        SplitConjuncts(std::move(on), &box->predicates);
        return Status::Ok();
      }
      // LEFT OUTER JOIN: build a dedicated nested box.
      auto sub = std::make_unique<Box>();
      sub->kind = Box::Kind::kSelect;
      Scope sub_scope;
      sub_scope.parent = nullptr;
      XNF_RETURN_IF_ERROR(AddTableRef(*ref.left, graph, sub.get(), &sub_scope));
      sub->left_outer_from = static_cast<int>(sub->quantifiers.size());
      XNF_RETURN_IF_ERROR(
          AddTableRef(*ref.right, graph, sub.get(), &sub_scope));
      ExprCtx ctx;
      ctx.scope = &sub_scope;
      ctx.graph = graph;
      ctx.box = sub.get();
      XNF_ASSIGN_OR_RETURN(ExprPtr on, BuildExpr(*ref.on, &ctx));
      SplitConjuncts(std::move(on), &sub->outer_join_predicates);
      // Head: all columns of all quantifiers, keeping their qualifiers so
      // the enclosing query can still address them as alias.column.
      for (size_t qi = 0; qi < sub->quantifiers.size(); ++qi) {
        const Schema& s = sub->quantifiers[qi].schema;
        for (size_t c = 0; c < s.size(); ++c) {
          HeadExpr h;
          h.expr = Expr::InputRef(static_cast<int>(qi), static_cast<int>(c),
                                  s.column(c).type);
          h.name = s.column(c).name;
          h.type = s.column(c).type;
          sub->head.push_back(std::move(h));
        }
      }
      // Output schema qualifiers follow the nested quantifiers.
      int sub_index = graph->AddBox(std::move(sub));
      Box* sub_box = graph->box(sub_index);
      Schema joined;
      for (const Quantifier& q : sub_box->quantifiers) {
        for (const Column& c : q.schema.columns()) joined.AddColumn(c);
      }
      Quantifier q;
      q.input_box = sub_index;
      q.alias = "";  // columns keep their own qualifiers
      q.schema = joined;
      box->quantifiers.push_back(std::move(q));
      scope->entries.push_back(
          Scope::Entry{"", box->quantifiers.back().schema,
                       static_cast<int>(box->quantifiers.size() - 1)});
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled table ref kind");
}

// --- SELECT box ------------------------------------------------------------

Result<int> Builder::BuildSelectBox(const sql::SelectStmt& stmt,
                                    QueryGraph* graph, Scope* parent,
                                    std::vector<ExprPtr>* bindings) {
  auto box = std::make_unique<Box>();
  box->kind = Box::Kind::kSelect;
  Scope scope;
  scope.parent = parent;
  scope.bindings = bindings;

  for (const auto& ref : stmt.from) {
    XNF_RETURN_IF_ERROR(AddTableRef(*ref, graph, box.get(), &scope));
  }

  ExprCtx where_ctx;
  where_ctx.scope = &scope;
  where_ctx.graph = graph;
  where_ctx.box = box.get();
  where_ctx.allow_aggs = false;
  if (stmt.where) {
    XNF_ASSIGN_OR_RETURN(ExprPtr where, BuildExpr(*stmt.where, &where_ctx));
    SplitConjuncts(std::move(where), &box->predicates);
  }

  // GROUP BY keys.
  ExprCtx group_ctx = where_ctx;
  for (const auto& g : stmt.group_by) {
    XNF_ASSIGN_OR_RETURN(ExprPtr key, BuildExpr(*g, &group_ctx));
    box->group_by.push_back(std::move(key));
  }

  // SELECT list.
  ExprCtx head_ctx = where_ctx;
  head_ctx.allow_aggs = true;
  for (const auto& item : stmt.items) {
    if (item.star) {
      std::string qualifier = ToLower(item.star_table);
      bool matched = false;
      for (size_t qi = 0; qi < box->quantifiers.size(); ++qi) {
        const Quantifier& q = box->quantifiers[qi];
        const Schema& s = q.schema;
        for (size_t c = 0; c < s.size(); ++c) {
          if (!qualifier.empty() &&
              !EqualsIgnoreCase(s.column(c).table, qualifier)) {
            continue;
          }
          matched = true;
          HeadExpr h;
          h.expr = Expr::InputRef(static_cast<int>(qi), static_cast<int>(c),
                                  s.column(c).type);
          h.name = s.column(c).name;
          h.type = s.column(c).type;
          box->head.push_back(std::move(h));
        }
      }
      if (!matched) {
        return Status::NotFound(qualifier.empty()
                                    ? "SELECT * with empty FROM"
                                    : "no columns match '" + item.star_table +
                                          ".*'");
      }
      continue;
    }
    HeadExpr h;
    XNF_ASSIGN_OR_RETURN(h.expr, BuildExpr(*item.expr, &head_ctx));
    h.type = h.expr->type;
    if (!item.alias.empty()) {
      h.name = ToLower(item.alias);
    } else if (item.expr->kind == sql::Expr::Kind::kColumnRef) {
      h.name = ToLower(item.expr->column);
    } else {
      h.name = "col" + std::to_string(box->head.size() + 1);
    }
    box->head.push_back(std::move(h));
  }

  // HAVING.
  if (stmt.having) {
    ExprCtx having_ctx = head_ctx;
    XNF_ASSIGN_OR_RETURN(box->having, BuildExpr(*stmt.having, &having_ctx));
  }

  bool grouped = !box->group_by.empty() || !box->aggs.empty();
  if (grouped) {
    for (const HeadExpr& h : box->head) {
      XNF_RETURN_IF_ERROR(ValidateGroupedExpr(*h.expr, *box, "SELECT list"));
    }
    if (box->having) {
      XNF_RETURN_IF_ERROR(ValidateGroupedExpr(*box->having, *box, "HAVING"));
    }
  } else if (box->having) {
    return Status::InvalidArgument("HAVING without GROUP BY or aggregates");
  }

  // ORDER BY: try head alias/position first, else expression over inputs.
  for (const auto& o : stmt.order_by) {
    OrderKey key;
    key.ascending = o.ascending;
    bool resolved = false;
    if (o.expr->kind == sql::Expr::Kind::kColumnRef && o.expr->table.empty()) {
      std::string name = ToLower(o.expr->column);
      for (size_t i = 0; i < box->head.size(); ++i) {
        if (box->head[i].name == name) {
          key.head_index = static_cast<int>(i);
          resolved = true;
          break;
        }
      }
    } else if (o.expr->kind == sql::Expr::Kind::kLiteral &&
               o.expr->literal.is_int()) {
      int64_t pos = o.expr->literal.AsInt();
      if (pos < 1 || pos > static_cast<int64_t>(box->head.size())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      key.head_index = static_cast<int>(pos - 1);
      resolved = true;
    }
    if (!resolved) {
      ExprCtx order_ctx = head_ctx;
      XNF_ASSIGN_OR_RETURN(key.expr, BuildExpr(*o.expr, &order_ctx));
      if (grouped) {
        // Must match a head expression in grouped queries.
        for (size_t i = 0; i < box->head.size(); ++i) {
          if (ExprEquals(*box->head[i].expr, *key.expr)) {
            key.head_index = static_cast<int>(i);
            key.expr.reset();
            break;
          }
        }
        if (key.head_index < 0) {
          return Status::NotSupported(
              "ORDER BY expression must appear in the SELECT list of a "
              "grouped query");
        }
      }
    }
    box->order_by.push_back(std::move(key));
  }

  box->distinct = stmt.distinct;
  box->limit = stmt.limit;
  box->offset = stmt.offset;
  return graph->AddBox(std::move(box));
}

Status Builder::ValidateGroupedExpr(const Expr& expr, const Box& box,
                                    const char* where) const {
  // Valid if the subtree equals a grouping key.
  for (const ExprPtr& g : box.group_by) {
    if (ExprEquals(*g, expr)) return Status::Ok();
  }
  if (expr.kind == Expr::Kind::kInputRef) {
    return Status::InvalidArgument(
        std::string("column in ") + where +
        " must appear in GROUP BY or inside an aggregate");
  }
  for (const ExprPtr& a : expr.args) {
    if (a) XNF_RETURN_IF_ERROR(ValidateGroupedExpr(*a, box, where));
  }
  return Status::Ok();
}

// --- expressions -----------------------------------------------------------

Result<ExprPtr> Builder::ResolveColumn(const std::string& table,
                                       const std::string& column,
                                       ExprCtx* ctx) {
  std::string tbl = ToLower(table);
  std::string col = ToLower(column);
  Scope* scope = ctx->scope;

  // Local resolution.
  std::optional<std::pair<int, size_t>> found;  // quantifier, column
  Type found_type = Type::kNull;
  for (const Scope::Entry& entry : scope->entries) {
    if (!tbl.empty()) {
      if (!entry.alias.empty() && !EqualsIgnoreCase(entry.alias, tbl)) {
        continue;
      }
      // For anonymous entries (flattened outer joins) the schema's own
      // column qualifiers discriminate.
      auto idx = entry.alias.empty() ? entry.schema.Resolve(tbl, col)
                                     : entry.schema.Resolve("", col);
      if (!idx.ok()) {
        if (idx.status().code() == StatusCode::kNotFound) continue;
        return idx.status();
      }
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column '" + table + "." +
                                       column + "'");
      }
      found = {entry.quantifier, *idx};
      found_type = entry.schema.column(*idx).type;
    } else {
      auto idx = entry.schema.Find(col);
      if (!idx.has_value()) continue;
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column '" + column + "'");
      }
      // Ambiguity within one entry.
      size_t count = 0;
      for (const Column& c : entry.schema.columns()) {
        if (EqualsIgnoreCase(c.name, col)) ++count;
      }
      if (count > 1) {
        return Status::InvalidArgument("ambiguous column '" + column + "'");
      }
      found = {entry.quantifier, *idx};
      found_type = entry.schema.column(*idx).type;
    }
  }
  if (found.has_value()) {
    return Expr::InputRef(found->first, static_cast<int>(found->second),
                          found_type);
  }

  // Correlated resolution in the enclosing scope.
  if (scope->parent != nullptr) {
    ExprCtx outer_ctx = *ctx;
    outer_ctx.scope = scope->parent;
    // The parent's box is unknown here; correlated bindings may only be
    // simple column references, which don't need the box. Pass through.
    XNF_ASSIGN_OR_RETURN(ExprPtr outer, ResolveColumn(table, column,
                                                      &outer_ctx));
    if (scope->bindings == nullptr) {
      return Status::Internal("correlated reference without binding sink");
    }
    // Reuse an existing identical binding when present.
    for (size_t i = 0; i < scope->bindings->size(); ++i) {
      if (ExprEquals(*(*scope->bindings)[i], *outer)) {
        auto param = std::make_unique<Expr>(Expr::Kind::kParam);
        param->param_index = static_cast<int>(i);
        param->type = outer->type;
        return ExprPtr(std::move(param));
      }
    }
    auto param = std::make_unique<Expr>(Expr::Kind::kParam);
    param->param_index = static_cast<int>(scope->bindings->size());
    param->type = outer->type;
    scope->bindings->push_back(std::move(outer));
    return ExprPtr(std::move(param));
  }

  return Status::NotFound("column '" +
                          (table.empty() ? column : table + "." + column) +
                          "' not found");
}

Result<ExprPtr> Builder::BuildAggCall(const sql::Expr& expr, ExprCtx* ctx) {
  if (!ctx->allow_aggs) {
    return Status::InvalidArgument("aggregate '" + expr.column +
                                   "' is not allowed here");
  }
  if (ctx->in_agg) {
    return Status::InvalidArgument("nested aggregates are not allowed");
  }
  AggSpec spec;
  std::string name = ToLower(expr.column);
  bool star =
      expr.args.size() == 1 && expr.args[0]->kind == sql::Expr::Kind::kStar;
  if (name == "count") {
    spec.func = star ? AggFunc::kCountStar : AggFunc::kCount;
    spec.result_type = Type::kInt;
  } else if (name == "sum" || name == "avg" || name == "min" ||
             name == "max") {
    if (star) {
      return Status::InvalidArgument(name + "(*) is not valid");
    }
    spec.func = name == "sum"   ? AggFunc::kSum
                : name == "avg" ? AggFunc::kAvg
                : name == "min" ? AggFunc::kMin
                                : AggFunc::kMax;
  } else {
    return Status::Internal("not an aggregate: " + name);
  }
  if (!star) {
    if (expr.args.size() != 1) {
      return Status::InvalidArgument(name + " takes exactly one argument");
    }
    ExprCtx arg_ctx = *ctx;
    arg_ctx.in_agg = true;
    arg_ctx.allow_aggs = false;
    XNF_ASSIGN_OR_RETURN(spec.arg, BuildExpr(*expr.args[0], &arg_ctx));
    switch (spec.func) {
      case AggFunc::kSum:
        spec.result_type =
            spec.arg->type == Type::kDouble ? Type::kDouble : Type::kInt;
        break;
      case AggFunc::kAvg:
        spec.result_type = Type::kDouble;
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        spec.result_type = spec.arg->type;
        break;
      default:
        break;
    }
  }
  spec.distinct = expr.distinct_arg;

  // Deduplicate identical aggregate specs.
  Box* box = ctx->box;
  for (size_t i = 0; i < box->aggs.size(); ++i) {
    const AggSpec& existing = box->aggs[i];
    bool same_arg =
        (existing.arg == nullptr && spec.arg == nullptr) ||
        (existing.arg != nullptr && spec.arg != nullptr &&
         ExprEquals(*existing.arg, *spec.arg));
    if (existing.func == spec.func && existing.distinct == spec.distinct &&
        same_arg) {
      auto ref = std::make_unique<Expr>(Expr::Kind::kAggRef);
      ref->agg_index = static_cast<int>(i);
      ref->type = existing.result_type;
      return ExprPtr(std::move(ref));
    }
  }
  auto ref = std::make_unique<Expr>(Expr::Kind::kAggRef);
  ref->agg_index = static_cast<int>(box->aggs.size());
  ref->type = spec.result_type;
  box->aggs.push_back(std::move(spec));
  return ExprPtr(std::move(ref));
}

Result<ExprPtr> Builder::BuildExpr(const sql::Expr& expr, ExprCtx* ctx) {
  using K = sql::Expr::Kind;
  switch (expr.kind) {
    case K::kLiteral:
      return Expr::Lit(expr.literal);
    case K::kColumnRef:
      return ResolveColumn(expr.table, expr.column, ctx);
    case K::kStar:
      return Status::InvalidArgument("'*' is only valid inside COUNT(*)");
    case K::kParam: {
      auto e = std::make_unique<Expr>(Expr::Kind::kParam);
      e->param_index = expr.param_index;
      e->type = Type::kNull;  // untyped until bound
      return ExprPtr(std::move(e));
    }
    case K::kBinary: {
      XNF_ASSIGN_OR_RETURN(ExprPtr l, BuildExpr(*expr.args[0], ctx));
      XNF_ASSIGN_OR_RETURN(ExprPtr r, BuildExpr(*expr.args[1], ctx));
      XNF_ASSIGN_OR_RETURN(Type t,
                           BinaryResultType(expr.bin_op, l->type, r->type));
      return Expr::Binary(expr.bin_op, std::move(l), std::move(r), t);
    }
    case K::kUnary: {
      XNF_ASSIGN_OR_RETURN(ExprPtr inner, BuildExpr(*expr.args[0], ctx));
      auto e = std::make_unique<Expr>(Expr::Kind::kUnary);
      e->un_op = expr.un_op;
      e->type = expr.un_op == sql::UnOp::kNot ? Type::kBool : inner->type;
      if (expr.un_op == sql::UnOp::kNeg && inner->type != Type::kInt &&
          inner->type != Type::kDouble && inner->type != Type::kNull) {
        return Status::InvalidArgument("unary '-' requires a numeric operand");
      }
      e->args.push_back(std::move(inner));
      return ExprPtr(std::move(e));
    }
    case K::kFuncCall: {
      std::string name = ToLower(expr.column);
      if (IsAggName(name)) return BuildAggCall(expr, ctx);
      auto e = std::make_unique<Expr>(Expr::Kind::kFuncCall);
      e->func_name = name;
      for (const auto& a : expr.args) {
        XNF_ASSIGN_OR_RETURN(ExprPtr arg, BuildExpr(*a, ctx));
        e->args.push_back(std::move(arg));
      }
      auto arity = [&](size_t n) -> Status {
        if (e->args.size() != n) {
          return Status::InvalidArgument(name + " takes " + std::to_string(n) +
                                         " argument(s)");
        }
        return Status::Ok();
      };
      if (name == "abs" || name == "floor" || name == "ceil" ||
          name == "round") {
        XNF_RETURN_IF_ERROR(arity(1));
        e->type = name == "abs" ? e->args[0]->type : Type::kInt;
        if (name == "abs" && e->args[0]->type == Type::kNull) {
          e->type = Type::kInt;
        }
      } else if (name == "mod") {
        XNF_RETURN_IF_ERROR(arity(2));
        e->type = Type::kInt;
      } else if (name == "lower" || name == "upper" || name == "trim") {
        XNF_RETURN_IF_ERROR(arity(1));
        e->type = Type::kString;
      } else if (name == "length") {
        XNF_RETURN_IF_ERROR(arity(1));
        e->type = Type::kInt;
      } else if (name == "substr") {
        if (e->args.size() != 2 && e->args.size() != 3) {
          return Status::InvalidArgument("substr takes 2 or 3 arguments");
        }
        e->type = Type::kString;
      } else if (name == "coalesce") {
        if (e->args.empty()) {
          return Status::InvalidArgument("coalesce needs arguments");
        }
        Type t = Type::kNull;
        for (const ExprPtr& a : e->args) {
          if (t == Type::kNull) {
            t = a->type;
          } else if (a->type != Type::kNull && a->type != t) {
            if ((t == Type::kInt || t == Type::kDouble) &&
                (a->type == Type::kInt || a->type == Type::kDouble)) {
              t = Type::kDouble;
            } else {
              return Status::InvalidArgument(
                  "coalesce arguments have mixed types");
            }
          }
        }
        e->type = t;
      } else {
        return Status::NotFound("unknown function '" + name + "'");
      }
      return ExprPtr(std::move(e));
    }
    case K::kIsNull: {
      XNF_ASSIGN_OR_RETURN(ExprPtr inner, BuildExpr(*expr.args[0], ctx));
      auto e = std::make_unique<Expr>(Expr::Kind::kIsNull);
      e->negated = expr.negated;
      e->type = Type::kBool;
      e->args.push_back(std::move(inner));
      return ExprPtr(std::move(e));
    }
    case K::kLike: {
      XNF_ASSIGN_OR_RETURN(ExprPtr text, BuildExpr(*expr.args[0], ctx));
      XNF_ASSIGN_OR_RETURN(ExprPtr pattern, BuildExpr(*expr.args[1], ctx));
      auto e = std::make_unique<Expr>(Expr::Kind::kLike);
      e->negated = expr.negated;
      e->type = Type::kBool;
      e->args.push_back(std::move(text));
      e->args.push_back(std::move(pattern));
      return ExprPtr(std::move(e));
    }
    case K::kBetween: {
      // a BETWEEN lo AND hi  ==>  a >= lo AND a <= hi  (negated: OR form)
      XNF_ASSIGN_OR_RETURN(ExprPtr a, BuildExpr(*expr.args[0], ctx));
      XNF_ASSIGN_OR_RETURN(ExprPtr lo, BuildExpr(*expr.args[1], ctx));
      XNF_ASSIGN_OR_RETURN(ExprPtr hi, BuildExpr(*expr.args[2], ctx));
      XNF_ASSIGN_OR_RETURN(
          Type t1, BinaryResultType(sql::BinOp::kGe, a->type, lo->type));
      XNF_ASSIGN_OR_RETURN(
          Type t2, BinaryResultType(sql::BinOp::kLe, a->type, hi->type));
      (void)t1;
      (void)t2;
      ExprPtr a2 = a->Clone();
      ExprPtr low = Expr::Binary(expr.negated ? sql::BinOp::kLt
                                              : sql::BinOp::kGe,
                                 std::move(a), std::move(lo), Type::kBool);
      ExprPtr high = Expr::Binary(expr.negated ? sql::BinOp::kGt
                                               : sql::BinOp::kLe,
                                  std::move(a2), std::move(hi), Type::kBool);
      return Expr::Binary(expr.negated ? sql::BinOp::kOr : sql::BinOp::kAnd,
                          std::move(low), std::move(high), Type::kBool);
    }
    case K::kInList: {
      auto e = std::make_unique<Expr>(Expr::Kind::kInList);
      e->negated = expr.negated;
      e->type = Type::kBool;
      for (const auto& a : expr.args) {
        XNF_ASSIGN_OR_RETURN(ExprPtr item, BuildExpr(*a, ctx));
        e->args.push_back(std::move(item));
      }
      return ExprPtr(std::move(e));
    }
    case K::kInSubquery:
    case K::kExistsSubquery:
    case K::kScalarSubquery: {
      auto e = std::make_unique<Expr>(Expr::Kind::kSubquery);
      e->negated = expr.negated;
      if (expr.kind == K::kInSubquery) {
        e->subquery_kind = Expr::SubqueryKind::kIn;
        e->type = Type::kBool;
        XNF_ASSIGN_OR_RETURN(ExprPtr operand, BuildExpr(*expr.args[0], ctx));
        e->args.push_back(std::move(operand));
      } else if (expr.kind == K::kExistsSubquery) {
        e->subquery_kind = Expr::SubqueryKind::kExists;
        e->type = Type::kBool;
      } else {
        e->subquery_kind = Expr::SubqueryKind::kScalar;
      }
      BoxSubquery sub;
      std::vector<ExprPtr> bindings;
      XNF_ASSIGN_OR_RETURN(
          sub.box,
          BuildSelectChain(*expr.subquery, ctx->graph, ctx->scope, &bindings));
      sub.param_bindings = std::move(bindings);
      Schema sub_schema = ctx->graph->box(sub.box)->OutputSchema();
      if (expr.kind == K::kScalarSubquery || expr.kind == K::kInSubquery) {
        if (sub_schema.size() != 1) {
          return Status::InvalidArgument(
              "subquery must return exactly one column");
        }
        if (expr.kind == K::kScalarSubquery) {
          e->type = sub_schema.column(0).type;
        }
      }
      e->subquery_index = static_cast<int>(ctx->box->subqueries.size());
      ctx->box->subqueries.push_back(std::move(sub));
      return ExprPtr(std::move(e));
    }
    case K::kCase: {
      auto e = std::make_unique<Expr>(Expr::Kind::kCase);
      Type result = Type::kNull;
      size_t n = expr.args.size();
      bool has_else = n % 2 == 1;
      size_t pairs = n / 2;
      for (size_t i = 0; i < pairs; ++i) {
        XNF_ASSIGN_OR_RETURN(ExprPtr when, BuildExpr(*expr.args[2 * i], ctx));
        XNF_ASSIGN_OR_RETURN(ExprPtr then,
                             BuildExpr(*expr.args[2 * i + 1], ctx));
        if (result == Type::kNull) result = then->type;
        e->args.push_back(std::move(when));
        e->args.push_back(std::move(then));
      }
      if (has_else) {
        XNF_ASSIGN_OR_RETURN(ExprPtr els, BuildExpr(*expr.args[n - 1], ctx));
        if (result == Type::kNull) result = els->type;
        e->args.push_back(std::move(els));
      }
      e->type = result;
      return ExprPtr(std::move(e));
    }
    case K::kPath:
    case K::kExistsPath:
      return Status::InvalidArgument(
          "path expressions are only valid in XNF contexts (SUCH THAT "
          "predicates and cursor definitions)");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace xnf::qgm
