#ifndef XNF_QGM_REWRITE_H_
#define XNF_QGM_REWRITE_H_

#include "common/status.h"
#include "common/trace.h"
#include "qgm/qgm.h"

namespace xnf::qgm {

// Query rewrite (the Starburst-style rule phase of §4.3): transforms a QGM
// graph into an equivalent, cheaper one. Implemented rules:
//  1. View merging: a SELECT box quantifier ranging over a simple SELECT box
//     (no aggregation/distinct/order/limit/outer-join/subqueries) is inlined
//     into the consumer.
//  2. Predicate pushdown: consumer predicates referencing only one
//     quantifier are pushed into non-merged SELECT inputs (when safe) and
//     through UNION branches.
//  3. Constant folding of literal-only arithmetic/comparison subtrees.
// Counts of applied rules are reported for tests/benchmarks.
struct RewriteStats {
  int views_merged = 0;
  int predicates_pushed = 0;
  int constants_folded = 0;
};

// `sink` (optional) receives one "rewrite-pass" span per fixpoint round and
// a "constant-fold" span for the final folding pass.
Result<RewriteStats> Rewrite(QueryGraph* graph, TraceSink* sink = nullptr);

}  // namespace xnf::qgm

#endif  // XNF_QGM_REWRITE_H_
