#ifndef XNF_QGM_EXPR_H_
#define XNF_QGM_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"

namespace xnf::qgm {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// Aggregate function kinds.
enum class AggFunc { kCount, kCountStar, kSum, kAvg, kMin, kMax };

// A fully resolved scalar expression. Column references are
// (quantifier index, column index) pairs within the owning SELECT box; after
// planning, `slot` additionally holds the flat offset into the operator's
// input row. Correlated references to enclosing queries are kParam.
struct Expr {
  enum class Kind {
    kLiteral,    // literal value
    kInputRef,   // quantifier/column (+ slot after planning)
    kParam,      // correlation parameter (index into ExecContext params)
    kBinary,
    kUnary,
    kFuncCall,   // scalar function (abs, lower, upper, length, mod, ...)
    kAggRef,     // reference to the owning box's aggregate #agg_index
    kIsNull,
    kLike,
    kCase,       // when/then pairs, optional trailing else
    kInList,     // args[0] IN args[1..]  (negated flag)
    kSubquery,   // EXISTS / IN / scalar subquery (see SubqueryKind)
  };
  enum class SubqueryKind { kExists, kIn, kScalar };

  Kind kind;
  Value literal;                      // kLiteral
  int quantifier = -1;                // kInputRef
  int column = -1;                    // kInputRef
  int slot = -1;                      // kInputRef, filled by the planner
  int param_index = -1;               // kParam
  sql::BinOp bin_op = sql::BinOp::kEq;
  sql::UnOp un_op = sql::UnOp::kNot;
  bool negated = false;               // kIsNull / kLike / kInList / kSubquery
  std::string func_name;              // kFuncCall
  int agg_index = -1;                 // kAggRef
  SubqueryKind subquery_kind = SubqueryKind::kExists;  // kSubquery
  int subquery_index = -1;            // kSubquery: index into box's subqueries
  Type type = Type::kNull;            // derived output type
  std::vector<ExprPtr> args;

  explicit Expr(Kind k) : kind(k) {}

  static ExprPtr Lit(Value v) {
    auto e = std::make_unique<Expr>(Kind::kLiteral);
    e->type = v.type();
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr InputRef(int q, int c, Type t) {
    auto e = std::make_unique<Expr>(Kind::kInputRef);
    e->quantifier = q;
    e->column = c;
    e->type = t;
    return e;
  }
  static ExprPtr Binary(sql::BinOp op, ExprPtr l, ExprPtr r, Type t) {
    auto e = std::make_unique<Expr>(Kind::kBinary);
    e->bin_op = op;
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    e->type = t;
    return e;
  }

  ExprPtr Clone() const;
  std::string ToString() const;
};

// One aggregate computed by a SELECT box (e.g. SUM(e.sal)).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;          // null for COUNT(*)
  bool distinct = false;
  Type result_type = Type::kInt;
};

// Calls `fn` on every node of `expr` (pre-order).
void VisitExpr(const Expr& expr, const std::function<void(const Expr&)>& fn);
void VisitExprMutable(Expr* expr, const std::function<void(Expr*)>& fn);

// Structural equality (used for GROUP BY validation and CSE).
bool ExprEquals(const Expr& a, const Expr& b);

// True if any kInputRef in `expr` references quantifier `q`.
bool ReferencesQuantifier(const Expr& expr, int q);

// True if the expression contains any kInputRef at all.
bool HasInputRefs(const Expr& expr);

// True if the expression contains an aggregate reference or subquery.
bool HasAggRef(const Expr& expr);
bool HasSubquery(const Expr& expr);

}  // namespace xnf::qgm

#endif  // XNF_QGM_EXPR_H_
