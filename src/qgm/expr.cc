#include "qgm/expr.h"

#include <functional>

namespace xnf::qgm {

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>(kind);
  out->literal = literal;
  out->quantifier = quantifier;
  out->column = column;
  out->slot = slot;
  out->param_index = param_index;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->negated = negated;
  out->func_name = func_name;
  out->agg_index = agg_index;
  out->subquery_kind = subquery_kind;
  out->subquery_index = subquery_index;
  out->type = type;
  for (const ExprPtr& a : args) out->args.push_back(a ? a->Clone() : nullptr);
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kInputRef:
      return "q" + std::to_string(quantifier) + ".c" + std::to_string(column);
    case Kind::kParam:
      return "$" + std::to_string(param_index);
    case Kind::kBinary: {
      static const char* names[] = {"=",  "<>", "<", "<=", ">",  ">=", "+",
                                    "-",  "*",  "/", "%",  "AND", "OR", "||"};
      return "(" + args[0]->ToString() + " " +
             names[static_cast<int>(bin_op)] + " " + args[1]->ToString() + ")";
    }
    case Kind::kUnary:
      return un_op == sql::UnOp::kNot ? "NOT " + args[0]->ToString()
                                      : "-" + args[0]->ToString();
    case Kind::kFuncCall: {
      std::string s = func_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kAggRef:
      return "agg" + std::to_string(agg_index);
    case Kind::kIsNull:
      return args[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kLike:
      return args[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             args[1]->ToString();
    case Kind::kCase:
      return "CASE(...)";
    case Kind::kInList: {
      std::string s = args[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kSubquery:
      return std::string(negated ? "NOT " : "") +
             (subquery_kind == SubqueryKind::kExists
                  ? "EXISTS"
                  : (subquery_kind == SubqueryKind::kIn ? "IN" : "SCALAR")) +
             "[sub" + std::to_string(subquery_index) + "]";
  }
  return "?";
}

void VisitExpr(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  fn(expr);
  for (const ExprPtr& a : expr.args) {
    if (a) VisitExpr(*a, fn);
  }
}

void VisitExprMutable(Expr* expr, const std::function<void(Expr*)>& fn) {
  fn(expr);
  for (ExprPtr& a : expr->args) {
    if (a) VisitExprMutable(a.get(), fn);
  }
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Expr::Kind::kLiteral:
      if (a.literal.is_null() != b.literal.is_null()) return false;
      if (a.literal.is_null()) break;
      if (a.literal.TotalOrderCompare(b.literal) != 0) return false;
      break;
    case Expr::Kind::kInputRef:
      if (a.quantifier != b.quantifier || a.column != b.column) return false;
      break;
    case Expr::Kind::kParam:
      if (a.param_index != b.param_index) return false;
      break;
    case Expr::Kind::kBinary:
      if (a.bin_op != b.bin_op) return false;
      break;
    case Expr::Kind::kUnary:
      if (a.un_op != b.un_op) return false;
      break;
    case Expr::Kind::kFuncCall:
      if (a.func_name != b.func_name) return false;
      break;
    case Expr::Kind::kAggRef:
      if (a.agg_index != b.agg_index) return false;
      break;
    case Expr::Kind::kIsNull:
    case Expr::Kind::kLike:
    case Expr::Kind::kInList:
      if (a.negated != b.negated) return false;
      break;
    case Expr::Kind::kCase:
      break;
    case Expr::Kind::kSubquery:
      return false;  // subqueries are never considered equal
  }
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!ExprEquals(*a.args[i], *b.args[i])) return false;
  }
  return true;
}

bool ReferencesQuantifier(const Expr& expr, int q) {
  bool found = false;
  VisitExpr(expr, [&](const Expr& e) {
    if (e.kind == Expr::Kind::kInputRef && e.quantifier == q) found = true;
  });
  return found;
}

bool HasInputRefs(const Expr& expr) {
  bool found = false;
  VisitExpr(expr, [&](const Expr& e) {
    if (e.kind == Expr::Kind::kInputRef) found = true;
  });
  return found;
}

bool HasAggRef(const Expr& expr) {
  bool found = false;
  VisitExpr(expr, [&](const Expr& e) {
    if (e.kind == Expr::Kind::kAggRef) found = true;
  });
  return found;
}

bool HasSubquery(const Expr& expr) {
  bool found = false;
  VisitExpr(expr, [&](const Expr& e) {
    if (e.kind == Expr::Kind::kSubquery) found = true;
  });
  return found;
}

}  // namespace xnf::qgm
