#ifndef XNF_QGM_BUILDER_H_
#define XNF_QGM_BUILDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result_set.h"
#include "common/status.h"
#include "qgm/qgm.h"
#include "sql/ast.h"

namespace xnf::qgm {

// Semantic analysis: turns a parsed SELECT into a Query Graph Model graph.
// Performs name resolution (against the catalog, expanding SQL views),
// typing, aggregate extraction, and correlated-subquery binding.
class Builder {
 public:
  // Resolves table names that are neither base tables nor SQL views —
  // used for (a) temp tables registered by the XNF semantic rewrite (the
  // common-subexpression materializations of §4.3) and (b) XNF view
  // components referenced as "view.node" (closure type (3) queries).
  // Returns nullptr when the name is unknown. The pointed-to result must
  // outlive query execution.
  using ExtraResolver =
      std::function<Result<const ResultSet*>(const std::string& name)>;

  explicit Builder(const Catalog* catalog, ExtraResolver extra = nullptr)
      : catalog_(catalog), extra_(std::move(extra)) {}

  // Builds a graph for a full SELECT (including UNION chains).
  Result<QueryGraph> Build(const sql::SelectStmt& stmt);

  // Builds a scalar expression over a single named row source (used by DML:
  // UPDATE ... SET x = expr WHERE ...). The produced expression's InputRefs
  // all have quantifier 0 and column = index into `schema`.
  Result<ExprPtr> BuildScalar(const sql::Expr& expr, const Schema& schema,
                              const std::string& alias);

 private:
  struct Scope;
  struct ExprCtx;

  Result<int> BuildSelectChain(const sql::SelectStmt& stmt, QueryGraph* graph,
                               Scope* parent,
                               std::vector<ExprPtr>* bindings);
  Result<int> BuildSelectBox(const sql::SelectStmt& stmt, QueryGraph* graph,
                             Scope* parent, std::vector<ExprPtr>* bindings);
  Status AddTableRef(const sql::TableRef& ref, QueryGraph* graph, Box* box,
                     Scope* scope);
  Status AddNamedSource(const std::string& name, const std::string& alias,
                        QueryGraph* graph, Box* box, Scope* scope);
  Result<ExprPtr> BuildExpr(const sql::Expr& expr, ExprCtx* ctx);
  Result<ExprPtr> ResolveColumn(const std::string& table,
                                const std::string& column, ExprCtx* ctx);
  Result<ExprPtr> BuildAggCall(const sql::Expr& expr, ExprCtx* ctx);
  Status ValidateGroupedExpr(const Expr& expr, const Box& box,
                             const char* where) const;

  const Catalog* catalog_;
  ExtraResolver extra_;
  std::vector<std::string> view_stack_;  // cycle detection for view expansion
};

// Derives the result type of a binary operation; fails on type mismatches.
Result<Type> BinaryResultType(sql::BinOp op, Type left, Type right);

}  // namespace xnf::qgm

#endif  // XNF_QGM_BUILDER_H_
