#ifndef XNF_QGM_QGM_H_
#define XNF_QGM_QGM_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result_set.h"
#include "common/schema.h"
#include "qgm/expr.h"

namespace xnf::qgm {

// Query Graph Model: queries are a DAG of boxes. Each box has a "head"
// (output schema) and a "body" describing how the output is derived — the
// representation the paper's §4.3 describes for Starburst. The XNF semantic
// rewrite produces one SELECT box per CO node/edge output (see xnf/rewrite).
struct Box;

// A quantifier ranges over the output of another box or a base table
// ("F" foreach quantifiers; existential quantifiers are represented as
// kSubquery expressions instead).
struct Quantifier {
  int input_box = -1;      // index into QueryGraph::boxes, or -1 for base
  std::string base_table;  // set when ranging directly over a base table
  std::string alias;       // correlation name
  Schema schema;           // output schema of the ranged-over input
};

// One output column of a box.
struct HeadExpr {
  ExprPtr expr;
  std::string name;
  Type type = Type::kNull;
};

// A correlated subquery attached to a SELECT box: `box` is evaluated with
// `param_bindings[i]` (expressions over the outer box's quantifiers)
// supplying parameter i.
struct BoxSubquery {
  int box = -1;
  std::vector<ExprPtr> param_bindings;
};

struct OrderKey {
  // If head_index >= 0 the key is an output column of the box (required when
  // the box aggregates); otherwise `expr` ranges over the box's quantifiers.
  int head_index = -1;
  ExprPtr expr;
  bool ascending = true;
};

struct Box {
  enum class Kind {
    kBaseTable,  // leaf: ranges over a stored table
    kSelect,     // select-project-join-aggregate
    kUnion,      // set operation over input boxes (see set_op)
    kValues,     // literal rows (also used for materialized temps)
  };

  enum class SetOpKind { kUnionAll, kUnionDistinct, kIntersect, kExcept };

  Kind kind = Kind::kSelect;

  // kBaseTable
  std::string table_name;

  // kSelect
  std::vector<Quantifier> quantifiers;
  std::vector<ExprPtr> predicates;  // conjunctive normal form (ANDed)
  std::vector<HeadExpr> head;
  bool distinct = false;
  std::vector<ExprPtr> group_by;
  std::vector<AggSpec> aggs;
  ExprPtr having;  // over group_by refs and kAggRef
  std::vector<OrderKey> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
  std::vector<BoxSubquery> subqueries;
  // LEFT OUTER JOIN support: if >= 0, all quantifiers with index >= this
  // are "preserved-side optional": rows of earlier quantifiers appear even
  // when no match exists (we only support a single left join per box, which
  // the builder guarantees by nesting).
  int left_outer_from = -1;
  // Predicates that act as the ON condition of the outer join.
  std::vector<ExprPtr> outer_join_predicates;

  // kUnion: UNION (ALL) boxes may have any number of inputs; INTERSECT and
  // EXCEPT boxes have exactly two.
  std::vector<int> union_inputs;
  bool union_all = false;
  SetOpKind set_op = SetOpKind::kUnionDistinct;

  // kValues: either inline rows or a borrowed external result (temp tables
  // registered by the XNF rewrite; the owner must outlive execution).
  Schema values_schema;
  std::vector<Row> values_rows;
  const ResultSet* values_ext = nullptr;

  // Output schema of this box (derived by the builder).
  Schema OutputSchema() const;
};

// An operator graph plus designated root box.
struct QueryGraph {
  std::vector<std::unique_ptr<Box>> boxes;
  int root = -1;

  Box* box(int i) const { return boxes[i].get(); }
  int AddBox(std::unique_ptr<Box> b) {
    boxes.push_back(std::move(b));
    return static_cast<int>(boxes.size() - 1);
  }

  std::string ToString() const;
};

}  // namespace xnf::qgm

#endif  // XNF_QGM_QGM_H_
