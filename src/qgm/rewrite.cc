#include "qgm/rewrite.h"

#include <functional>

#include "exec/eval.h"

namespace xnf::qgm {

namespace {

// Rebuilds `e`, replacing every kInputRef node by `leaf(e)` (which may
// return the same reference or an arbitrary replacement expression).
ExprPtr MapRefs(const Expr& e,
                const std::function<ExprPtr(const Expr&)>& leaf) {
  if (e.kind == Expr::Kind::kInputRef) return leaf(e);
  ExprPtr out = std::make_unique<Expr>(e.kind);
  out->literal = e.literal;
  out->quantifier = e.quantifier;
  out->column = e.column;
  out->slot = e.slot;
  out->param_index = e.param_index;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  out->negated = e.negated;
  out->func_name = e.func_name;
  out->agg_index = e.agg_index;
  out->subquery_kind = e.subquery_kind;
  out->subquery_index = e.subquery_index;
  out->type = e.type;
  for (const ExprPtr& a : e.args) {
    out->args.push_back(a ? MapRefs(*a, leaf) : nullptr);
  }
  return out;
}

// True if `box` can be inlined into a consumer.
bool IsMergeable(const Box& box) {
  return box.kind == Box::Kind::kSelect && box.aggs.empty() &&
         box.group_by.empty() && box.having == nullptr && !box.distinct &&
         box.order_by.empty() && !box.limit.has_value() && !box.offset.has_value() &&
         box.subqueries.empty() && box.left_outer_from < 0 &&
         !box.quantifiers.empty();
}

// Applies `fn` to every expression owned by `box` (in place, via reseating).
void ForEachExpr(Box* box, const std::function<void(ExprPtr*)>& fn) {
  for (ExprPtr& p : box->predicates) fn(&p);
  for (ExprPtr& p : box->outer_join_predicates) fn(&p);
  for (HeadExpr& h : box->head) fn(&h.expr);
  for (ExprPtr& g : box->group_by) fn(&g);
  for (AggSpec& a : box->aggs) {
    if (a.arg) fn(&a.arg);
  }
  if (box->having) fn(&box->having);
  for (OrderKey& k : box->order_by) {
    if (k.expr) fn(&k.expr);
  }
  for (BoxSubquery& s : box->subqueries) {
    for (ExprPtr& b : s.param_bindings) fn(&b);
  }
}

std::vector<int> CountReferences(const QueryGraph& graph) {
  std::vector<int> refs(graph.boxes.size(), 0);
  if (graph.root >= 0) refs[graph.root]++;
  for (const auto& box : graph.boxes) {
    for (const Quantifier& q : box->quantifiers) {
      if (q.input_box >= 0) refs[q.input_box]++;
    }
    for (const BoxSubquery& s : box->subqueries) {
      if (s.box >= 0) refs[s.box]++;
    }
    for (int u : box->union_inputs) refs[u]++;
  }
  return refs;
}

// Merges quantifier `qi` of `consumer` (ranging over mergeable `inner`).
void MergeQuantifier(Box* consumer, size_t qi, const Box& inner) {
  size_t n_inner = inner.quantifiers.size();

  // Remap an inner expression into consumer coordinates (inner quantifier k
  // becomes consumer quantifier qi + k).
  auto remap_inner = [&](const Expr& e) {
    return MapRefs(e, [&](const Expr& ref) {
      ExprPtr out = ref.Clone();
      out->quantifier = ref.quantifier + static_cast<int>(qi);
      return out;
    });
  };

  // Remap a consumer expression: references to qi are substituted by the
  // inner head expression; later quantifiers shift by n_inner - 1.
  auto remap_consumer = [&](const Expr& e) {
    return MapRefs(e, [&](const Expr& ref) -> ExprPtr {
      if (ref.quantifier == static_cast<int>(qi)) {
        return remap_inner(*inner.head[ref.column].expr);
      }
      ExprPtr out = ref.Clone();
      if (ref.quantifier > static_cast<int>(qi)) {
        out->quantifier = ref.quantifier + static_cast<int>(n_inner) - 1;
      }
      return out;
    });
  };

  ForEachExpr(consumer, [&](ExprPtr* p) { *p = remap_consumer(**p); });
  // Outer-join boundary shifts too (consumers with outer joins are not
  // merged into, but keep this correct for safety).
  if (consumer->left_outer_from > static_cast<int>(qi)) {
    consumer->left_outer_from += static_cast<int>(n_inner) - 1;
  }

  // Splice the inner quantifiers in place of qi.
  std::vector<Quantifier> new_quantifiers;
  new_quantifiers.reserve(consumer->quantifiers.size() + n_inner - 1);
  for (size_t k = 0; k < qi; ++k) {
    new_quantifiers.push_back(std::move(consumer->quantifiers[k]));
  }
  for (const Quantifier& q : inner.quantifiers) {
    new_quantifiers.push_back(
        Quantifier{q.input_box, q.base_table, q.alias, q.schema});
  }
  for (size_t k = qi + 1; k < consumer->quantifiers.size(); ++k) {
    new_quantifiers.push_back(std::move(consumer->quantifiers[k]));
  }
  consumer->quantifiers = std::move(new_quantifiers);

  // Import the inner predicates.
  for (const ExprPtr& p : inner.predicates) {
    consumer->predicates.push_back(remap_inner(*p));
  }
}

bool TryFold(ExprPtr* p, RewriteStats* stats) {
  Expr* e = p->get();
  if (e->kind != Expr::Kind::kBinary && e->kind != Expr::Kind::kUnary) {
    return false;
  }
  // Logical operators are left alone (three-valued logic shortcuts are the
  // executor's business).
  if (e->kind == Expr::Kind::kBinary &&
      (e->bin_op == sql::BinOp::kAnd || e->bin_op == sql::BinOp::kOr)) {
    return false;
  }
  for (const ExprPtr& a : e->args) {
    if (a->kind != Expr::Kind::kLiteral) return false;
  }
  exec::EvalContext ectx;
  Row empty;
  exec::ExecContext exec_ctx;
  ectx.row = &empty;
  ectx.exec = &exec_ctx;
  auto v = exec::EvalExpr(*e, &ectx);
  if (!v.ok()) return false;  // e.g. division by zero: leave for runtime
  Type t = e->type;
  *p = Expr::Lit(std::move(v).value());
  (*p)->type = t;
  stats->constants_folded++;
  return true;
}

void FoldConstants(Box* box, RewriteStats* stats) {
  ForEachExpr(box, [&](ExprPtr* p) {
    // Bottom-up: fold children first.
    std::function<void(ExprPtr*)> walk = [&](ExprPtr* node) {
      for (ExprPtr& a : (*node)->args) {
        if (a) walk(&a);
      }
      TryFold(node, stats);
    };
    walk(p);
  });
}

}  // namespace

Result<RewriteStats> Rewrite(QueryGraph* graph, TraceSink* sink) {
  RewriteStats stats;
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 25) {
    TraceScope round(
        sink, "rewrite-pass",
        sink != nullptr ? "round " + std::to_string(guard) : std::string());
    changed = false;
    std::vector<int> refs = CountReferences(*graph);

    // Rule 1: view merging.
    for (auto& box_ptr : graph->boxes) {
      Box* box = box_ptr.get();
      if (box->kind != Box::Kind::kSelect) continue;
      if (box->left_outer_from >= 0) continue;  // keep outer joins intact
      for (size_t qi = 0; qi < box->quantifiers.size(); ++qi) {
        int input = box->quantifiers[qi].input_box;
        if (input < 0) continue;
        const Box& inner = *graph->box(input);
        if (!IsMergeable(inner) || refs[input] != 1) continue;
        MergeQuantifier(box, qi, inner);
        stats.views_merged++;
        changed = true;
        break;  // quantifier list changed; restart this box next round
      }
      if (changed) break;
    }
    if (changed) continue;

    // Rule 2: predicate pushdown into non-merged SELECT inputs.
    for (auto& box_ptr : graph->boxes) {
      Box* box = box_ptr.get();
      if (box->kind != Box::Kind::kSelect || box->left_outer_from >= 0) {
        continue;
      }
      for (size_t pi = 0; pi < box->predicates.size() && !changed; ++pi) {
        const Expr& pred = *box->predicates[pi];
        if (HasSubquery(pred) || HasAggRef(pred)) continue;
        // Must reference exactly one quantifier.
        int target = -1;
        bool single = true;
        VisitExpr(pred, [&](const Expr& e) {
          if (e.kind == Expr::Kind::kInputRef) {
            if (target < 0) {
              target = e.quantifier;
            } else if (target != e.quantifier) {
              single = false;
            }
          }
        });
        if (!single || target < 0) continue;
        int input = box->quantifiers[target].input_box;
        if (input < 0) continue;
        Box* inner = graph->box(input);
        if (refs[input] != 1) continue;
        if (inner->kind != Box::Kind::kSelect || !inner->aggs.empty() ||
            !inner->group_by.empty() || inner->limit.has_value() ||
            inner->offset.has_value() || inner->left_outer_from >= 0) {
          continue;
        }
        // Head columns referenced must be pure input refs or literals to
        // guarantee a loss-free rewrite (arbitrary exprs are fine too, but
        // keep substitution conservative).
        ExprPtr pushed = MapRefs(pred, [&](const Expr& ref) {
          return inner->head[ref.column].expr->Clone();
        });
        inner->predicates.push_back(std::move(pushed));
        box->predicates.erase(box->predicates.begin() + pi);
        stats.predicates_pushed++;
        changed = true;
      }
      if (changed) break;
    }
    if (changed) continue;
  }

  // Rule 3: constant folding (single pass, bottom-up per expression).
  {
    TraceScope fold(sink, "constant-fold");
    for (auto& box_ptr : graph->boxes) {
      FoldConstants(box_ptr.get(), &stats);
    }
  }
  return stats;
}

}  // namespace xnf::qgm
