#include "sql/parser.h"

#include "common/str_util.h"
#include "sql/lexer.h"

namespace xnf::sql {

namespace {

// Words that terminate clauses; an identifier equal to one of these is never
// consumed as an implicit alias.
const char* const kReservedWords[] = {
    "select", "from",   "where",  "group",  "having", "order",  "limit",
    "union",  "intersect", "except", "join",   "left",   "right",  "inner",  "outer",  "on",
    "as",     "and",    "or",     "not",    "in",     "is",     "null",
    "like",   "between", "exists", "case",  "when",   "then",   "else",
    "end",    "distinct", "asc",  "desc",   "insert", "update", "delete",
    "create", "drop",   "set",    "values", "into",   "out",    "of",
    "take",   "relate", "such",   "that",   "with",   "attributes",
    "offset", "limit",
    "using",  "connect", "disconnect", "by",
};

}  // namespace

bool Parser::IsReservedWord(const Token& token) {
  if (token.kind != TokenKind::kIdentifier) return false;
  for (const char* w : kReservedWords) {
    if (EqualsIgnoreCase(token.text, w)) return true;
  }
  return false;
}

Parser::Parser(std::string input) : input_(std::move(input)) {
  auto lexed = Lex(input_);
  if (!lexed.ok()) {
    lex_status_ = lexed.status();
  } else {
    tokens_ = std::move(lexed).value();
  }
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.empty() ? 0 : tokens_.size() - 1;
  static const Token kEndToken;
  if (tokens_.empty()) return kEndToken;
  return tokens_[i];
}

Token Parser::Consume() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Accept(TokenKind kind) {
  if (Peek().kind == kind) {
    Consume();
    return true;
  }
  return false;
}

bool Parser::AcceptKeyword(const char* keyword) {
  if (Peek().Is(keyword)) {
    Consume();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind kind, const char* what) {
  if (Peek().kind == kind) {
    Consume();
    return Status::Ok();
  }
  return MakeError(std::string("expected ") + what + ", found " +
                   Peek().Describe());
}

Status Parser::ExpectKeyword(const char* keyword) {
  if (Peek().Is(keyword)) {
    Consume();
    return Status::Ok();
  }
  return MakeError(std::string("expected '") + keyword + "', found " +
                   Peek().Describe());
}

bool Parser::AtEnd() const { return Peek().kind == TokenKind::kEnd; }

size_t Parser::CurrentOffset() const { return Peek().offset; }

void Parser::SkipToStatementEnd() {
  while (!AtEnd() && Peek().kind != TokenKind::kSemicolon) Consume();
}

Status Parser::MakeError(const std::string& message) const {
  const Token& t = Peek();
  return Status::ParseError(message + " at line " + std::to_string(t.line) +
                            ", column " + std::to_string(t.column));
}

Result<std::vector<Statement>> Parser::ParseScript() {
  std::vector<Statement> out;
  while (!AtEnd()) {
    if (Accept(TokenKind::kSemicolon)) continue;
    XNF_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

Result<Statement> Parser::ParseStatement() {
  XNF_RETURN_IF_ERROR(lex_status_);
  const Token& t = Peek();
  Result<Statement> result = [&]() -> Result<Statement> {
    if (t.Is("select")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kSelect;
      XNF_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (t.Is("explain")) return ParseExplain();
    if (t.Is("create")) return ParseCreate();
    if (t.Is("insert")) return ParseInsert();
    if (t.Is("update")) return ParseUpdate();
    if (t.Is("delete")) return ParseDelete();
    if (t.Is("drop")) return ParseDrop();
    return MakeError("expected a statement, found " + t.Describe());
  }();
  if (!result.ok()) return result.status();
  Accept(TokenKind::kSemicolon);
  return result;
}

Result<Statement> Parser::ParseExplain() {
  XNF_RETURN_IF_ERROR(ExpectKeyword("explain"));
  Statement stmt;
  stmt.kind = Statement::Kind::kExplain;
  stmt.explain = std::make_unique<ExplainStmt>();
  stmt.explain->analyze = AcceptKeyword("analyze");
  if (Peek().Is("out")) {
    // XNF body: capture the statement text verbatim for the XNF parser.
    size_t start = CurrentOffset();
    SkipToStatementEnd();
    stmt.explain->xnf_text = input_.substr(start, CurrentOffset() - start);
    return stmt;
  }
  XNF_ASSIGN_OR_RETURN(stmt.explain->select, ParseSelect());
  return stmt;
}

Result<Type> Parser::ParseType() {
  Token t = Consume();
  if (t.kind != TokenKind::kIdentifier) {
    return MakeError("expected a type name, found " + t.Describe());
  }
  std::string name = ToLower(t.text);
  Type type;
  if (name == "int" || name == "integer" || name == "bigint" ||
      name == "smallint") {
    type = Type::kInt;
  } else if (name == "double" || name == "float" || name == "real" ||
             name == "decimal" || name == "numeric") {
    type = Type::kDouble;
  } else if (name == "varchar" || name == "char" || name == "text" ||
             name == "string") {
    type = Type::kString;
  } else if (name == "bool" || name == "boolean") {
    type = Type::kBool;
  } else {
    return MakeError("unknown type '" + t.text + "'");
  }
  // Optional length/precision, e.g. VARCHAR(40) or DECIMAL(10,2); ignored.
  if (Accept(TokenKind::kLParen)) {
    while (!AtEnd() && Peek().kind != TokenKind::kRParen) Consume();
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  }
  return type;
}

Result<Statement> Parser::ParseCreate() {
  XNF_RETURN_IF_ERROR(ExpectKeyword("create"));
  bool unique = AcceptKeyword("unique");
  bool ordered = AcceptKeyword("ordered");
  if (AcceptKeyword("table")) {
    if (unique || ordered) return MakeError("unexpected modifier before TABLE");
    auto ct = std::make_unique<CreateTableStmt>();
    Token name = Consume();
    if (name.kind != TokenKind::kIdentifier) {
      return MakeError("expected table name");
    }
    ct->name = name.text;
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    do {
      ColumnDef col;
      Token cn = Consume();
      if (cn.kind != TokenKind::kIdentifier) {
        return MakeError("expected column name");
      }
      col.name = cn.text;
      XNF_ASSIGN_OR_RETURN(col.type, ParseType());
      while (true) {
        if (AcceptKeyword("not")) {
          XNF_RETURN_IF_ERROR(ExpectKeyword("null"));
          col.not_null = true;
        } else if (AcceptKeyword("primary")) {
          XNF_RETURN_IF_ERROR(ExpectKeyword("key"));
          col.primary_key = true;
        } else {
          break;
        }
      }
      ct->columns.push_back(std::move(col));
    } while (Accept(TokenKind::kComma));
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    if (AcceptKeyword("using")) {
      if (AcceptKeyword("row")) {
        ct->storage = StorageClause::kRow;
      } else if (AcceptKeyword("column")) {
        ct->storage = StorageClause::kColumn;
      } else {
        return MakeError("expected ROW or COLUMN after USING");
      }
    }
    if (AcceptKeyword("cluster")) {
      XNF_RETURN_IF_ERROR(ExpectKeyword("by"));
      if (Peek().kind != TokenKind::kIdentifier) {
        return MakeError("expected a column name after CLUSTER BY");
      }
      ct->cluster_by = Consume().text;
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::move(ct);
    return stmt;
  }
  if (AcceptKeyword("index")) {
    auto ci = std::make_unique<CreateIndexStmt>();
    ci->unique = unique;
    ci->ordered = ordered;
    Token name = Consume();
    if (name.kind != TokenKind::kIdentifier) {
      return MakeError("expected index name");
    }
    ci->name = name.text;
    XNF_RETURN_IF_ERROR(ExpectKeyword("on"));
    Token tbl = Consume();
    if (tbl.kind != TokenKind::kIdentifier) {
      return MakeError("expected table name");
    }
    ci->table = tbl.text;
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    do {
      Token col = Consume();
      if (col.kind != TokenKind::kIdentifier) {
        return MakeError("expected column name");
      }
      ci->columns.push_back(col.text);
    } while (Accept(TokenKind::kComma));
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateIndex;
    stmt.create_index = std::move(ci);
    return stmt;
  }
  if (AcceptKeyword("view")) {
    if (unique || ordered) return MakeError("unexpected modifier before VIEW");
    auto cv = std::make_unique<CreateViewStmt>();
    Token name = Consume();
    if (name.kind != TokenKind::kIdentifier) {
      return MakeError("expected view name");
    }
    cv->name = name.text;
    XNF_RETURN_IF_ERROR(ExpectKeyword("as"));
    size_t body_start = CurrentOffset();
    cv->is_xnf = Peek().Is("out");
    // Capture the definition text verbatim up to the statement terminator;
    // validation happens at execution time via the appropriate parser.
    SkipToStatementEnd();
    size_t body_end =
        AtEnd() ? input_.size() : Peek().offset;  // offset of ';' or end
    cv->definition = input_.substr(body_start, body_end - body_start);
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateView;
    stmt.create_view = std::move(cv);
    return stmt;
  }
  return MakeError("expected TABLE, INDEX, or VIEW after CREATE");
}

Result<Statement> Parser::ParseInsert() {
  XNF_RETURN_IF_ERROR(ExpectKeyword("insert"));
  XNF_RETURN_IF_ERROR(ExpectKeyword("into"));
  auto ins = std::make_unique<InsertStmt>();
  Token name = Consume();
  if (name.kind != TokenKind::kIdentifier) {
    return MakeError("expected table name");
  }
  ins->table = name.text;
  if (Accept(TokenKind::kLParen)) {
    do {
      Token col = Consume();
      if (col.kind != TokenKind::kIdentifier) {
        return MakeError("expected column name");
      }
      ins->columns.push_back(col.text);
    } while (Accept(TokenKind::kComma));
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  }
  if (AcceptKeyword("values")) {
    do {
      XNF_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      std::vector<ExprPtr> row;
      do {
        XNF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (Accept(TokenKind::kComma));
      XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      ins->rows.push_back(std::move(row));
    } while (Accept(TokenKind::kComma));
  } else if (Peek().Is("select")) {
    XNF_ASSIGN_OR_RETURN(ins->select, ParseSelect());
  } else {
    return MakeError("expected VALUES or SELECT");
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  stmt.insert = std::move(ins);
  return stmt;
}

Result<Statement> Parser::ParseUpdate() {
  XNF_RETURN_IF_ERROR(ExpectKeyword("update"));
  auto upd = std::make_unique<UpdateStmt>();
  Token name = Consume();
  if (name.kind != TokenKind::kIdentifier) {
    return MakeError("expected table name");
  }
  upd->table = name.text;
  XNF_RETURN_IF_ERROR(ExpectKeyword("set"));
  do {
    Token col = Consume();
    if (col.kind != TokenKind::kIdentifier) {
      return MakeError("expected column name");
    }
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='"));
    XNF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    upd->assignments.emplace_back(col.text, std::move(e));
  } while (Accept(TokenKind::kComma));
  if (AcceptKeyword("where")) {
    XNF_ASSIGN_OR_RETURN(upd->where, ParseExpr());
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kUpdate;
  stmt.update = std::move(upd);
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  XNF_RETURN_IF_ERROR(ExpectKeyword("delete"));
  XNF_RETURN_IF_ERROR(ExpectKeyword("from"));
  auto del = std::make_unique<DeleteStmt>();
  Token name = Consume();
  if (name.kind != TokenKind::kIdentifier) {
    return MakeError("expected table name");
  }
  del->table = name.text;
  if (AcceptKeyword("where")) {
    XNF_ASSIGN_OR_RETURN(del->where, ParseExpr());
  }
  Statement stmt;
  stmt.kind = Statement::Kind::kDelete;
  stmt.del = std::move(del);
  return stmt;
}

Result<Statement> Parser::ParseDrop() {
  XNF_RETURN_IF_ERROR(ExpectKeyword("drop"));
  auto drop = std::make_unique<DropStmt>();
  if (AcceptKeyword("table")) {
    drop->is_view = false;
  } else if (AcceptKeyword("view")) {
    drop->is_view = true;
  } else {
    return MakeError("expected TABLE or VIEW after DROP");
  }
  Token name = Consume();
  if (name.kind != TokenKind::kIdentifier) {
    return MakeError("expected object name");
  }
  drop->name = name.text;
  Statement stmt;
  stmt.kind = Statement::Kind::kDrop;
  stmt.drop = std::move(drop);
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  XNF_RETURN_IF_ERROR(lex_status_);
  XNF_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> head, ParseSelectCore());
  SelectStmt* tail = head.get();
  while (Peek().Is("union") || Peek().Is("intersect") || Peek().Is("except")) {
    SelectStmt::SetOp op;
    if (AcceptKeyword("union")) {
      op = AcceptKeyword("all") ? SelectStmt::SetOp::kUnionAll
                                : SelectStmt::SetOp::kUnion;
    } else if (AcceptKeyword("intersect")) {
      op = SelectStmt::SetOp::kIntersect;
    } else {
      XNF_RETURN_IF_ERROR(ExpectKeyword("except"));
      op = SelectStmt::SetOp::kExcept;
    }
    XNF_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> next, ParseSelectCore());
    tail->set_op = op;
    tail->union_all = op == SelectStmt::SetOp::kUnionAll;
    tail->union_next = std::move(next);
    tail = tail->union_next.get();
  }
  return head;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectCore() {
  XNF_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = AcceptKeyword("distinct");
  if (AcceptKeyword("all")) {
    // SELECT ALL is the default.
  }
  // Select list.
  do {
    SelectItem item;
    if (Peek().kind == TokenKind::kStar) {
      Consume();
      item.star = true;
    } else if (Peek().kind == TokenKind::kIdentifier &&
               Peek(1).kind == TokenKind::kDot &&
               Peek(2).kind == TokenKind::kStar) {
      item.star = true;
      item.star_table = Consume().text;
      Consume();  // '.'
      Consume();  // '*'
    } else {
      XNF_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("as")) {
        Token alias = Consume();
        if (alias.kind != TokenKind::kIdentifier) {
          return MakeError("expected alias after AS");
        }
        item.alias = alias.text;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !IsReservedWord(Peek())) {
        item.alias = Consume().text;
      }
    }
    stmt->items.push_back(std::move(item));
  } while (Accept(TokenKind::kComma));

  if (AcceptKeyword("from")) {
    do {
      XNF_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
    } while (Accept(TokenKind::kComma));
  }
  if (AcceptKeyword("where")) {
    XNF_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (AcceptKeyword("group")) {
    XNF_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      XNF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Accept(TokenKind::kComma));
  }
  if (AcceptKeyword("having")) {
    XNF_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (AcceptKeyword("order")) {
    XNF_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      OrderItem item;
      XNF_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("desc")) {
        item.ascending = false;
      } else {
        AcceptKeyword("asc");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
  }
  if (AcceptKeyword("limit")) {
    Token n = Consume();
    if (n.kind != TokenKind::kInteger) {
      return MakeError("expected integer after LIMIT");
    }
    stmt->limit = n.int_value;
    if (AcceptKeyword("offset")) {
      Token m = Consume();
      if (m.kind != TokenKind::kInteger) {
        return MakeError("expected integer after OFFSET");
      }
      stmt->offset = m.int_value;
    }
  }
  return stmt;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTableRef() {
  XNF_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> left, ParseTableRefPrimary());
  while (true) {
    JoinType jt;
    if (Peek().Is("join") || Peek().Is("inner")) {
      AcceptKeyword("inner");
      XNF_RETURN_IF_ERROR(ExpectKeyword("join"));
      jt = JoinType::kInner;
    } else if (Peek().Is("left")) {
      Consume();
      AcceptKeyword("outer");
      XNF_RETURN_IF_ERROR(ExpectKeyword("join"));
      jt = JoinType::kLeft;
    } else {
      break;
    }
    XNF_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> right,
                         ParseTableRefPrimary());
    XNF_RETURN_IF_ERROR(ExpectKeyword("on"));
    XNF_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = jt;
    join->left = std::move(left);
    join->right = std::move(right);
    join->on = std::move(on);
    left = std::move(join);
  }
  return left;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTableRefPrimary() {
  auto ref = std::make_unique<TableRef>();
  if (Accept(TokenKind::kLParen)) {
    if (!Peek().Is("select")) {
      return MakeError("expected SELECT in derived table");
    }
    ref->kind = TableRef::Kind::kSubquery;
    XNF_ASSIGN_OR_RETURN(ref->subquery, ParseSelect());
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  } else {
    Token name = Consume();
    if (name.kind != TokenKind::kIdentifier) {
      return MakeError("expected table name, found " + name.Describe());
    }
    ref->kind = TableRef::Kind::kNamed;
    ref->name = name.text;
    // Dotted reference to an XNF view component ("view.node"), the paper's
    // closure type (3): XNF to NF queries.
    if (Accept(TokenKind::kDot)) {
      Token component = Consume();
      if (component.kind != TokenKind::kIdentifier) {
        return MakeError("expected component name after '.'");
      }
      ref->name += "." + component.text;
    }
  }
  if (AcceptKeyword("as")) {
    Token alias = Consume();
    if (alias.kind != TokenKind::kIdentifier) {
      return MakeError("expected alias after AS");
    }
    ref->alias = alias.text;
  } else if (Peek().kind == TokenKind::kIdentifier && !IsReservedWord(Peek())) {
    ref->alias = Consume().text;
  }
  if (ref->kind == TableRef::Kind::kSubquery && ref->alias.empty()) {
    return MakeError("derived table requires an alias");
  }
  return ref;
}

// ------------------------- expressions -------------------------

Result<ExprPtr> Parser::ParseExpr() {
  XNF_RETURN_IF_ERROR(lex_status_);
  return ParseOr();
}

Result<ExprPtr> Parser::ParseOr() {
  XNF_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (AcceptKeyword("or")) {
    XNF_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::Binary(BinOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  XNF_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Peek().Is("and")) {
    Consume();
    XNF_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::Binary(BinOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (AcceptKeyword("not")) {
    XNF_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    auto e = std::make_unique<Expr>(Expr::Kind::kUnary);
    e->un_op = UnOp::kNot;
    e->args.push_back(std::move(inner));
    return ExprPtr(std::move(e));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  XNF_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // comparison operators
  BinOp op;
  bool has_cmp = true;
  switch (Peek().kind) {
    case TokenKind::kEq:
      op = BinOp::kEq;
      break;
    case TokenKind::kNe:
      op = BinOp::kNe;
      break;
    case TokenKind::kLt:
      op = BinOp::kLt;
      break;
    case TokenKind::kLe:
      op = BinOp::kLe;
      break;
    case TokenKind::kGt:
      op = BinOp::kGt;
      break;
    case TokenKind::kGe:
      op = BinOp::kGe;
      break;
    default:
      has_cmp = false;
      op = BinOp::kEq;
      break;
  }
  if (has_cmp) {
    Consume();
    XNF_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return Expr::Binary(op, std::move(left), std::move(right));
  }
  if (Peek().Is("is")) {
    Consume();
    bool negated = AcceptKeyword("not");
    XNF_RETURN_IF_ERROR(ExpectKeyword("null"));
    auto e = std::make_unique<Expr>(Expr::Kind::kIsNull);
    e->negated = negated;
    e->args.push_back(std::move(left));
    return ExprPtr(std::move(e));
  }
  bool negated = false;
  if (Peek().Is("not") &&
      (Peek(1).Is("like") || Peek(1).Is("in") || Peek(1).Is("between"))) {
    Consume();
    negated = true;
  }
  if (AcceptKeyword("like")) {
    XNF_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    auto e = std::make_unique<Expr>(Expr::Kind::kLike);
    e->negated = negated;
    e->args.push_back(std::move(left));
    e->args.push_back(std::move(pattern));
    return ExprPtr(std::move(e));
  }
  if (AcceptKeyword("between")) {
    XNF_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    XNF_RETURN_IF_ERROR(ExpectKeyword("and"));
    XNF_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    auto e = std::make_unique<Expr>(Expr::Kind::kBetween);
    e->negated = negated;
    e->args.push_back(std::move(left));
    e->args.push_back(std::move(lo));
    e->args.push_back(std::move(hi));
    return ExprPtr(std::move(e));
  }
  if (AcceptKeyword("in")) {
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (Peek().Is("select")) {
      auto e = std::make_unique<Expr>(Expr::Kind::kInSubquery);
      e->negated = negated;
      e->args.push_back(std::move(left));
      XNF_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return ExprPtr(std::move(e));
    }
    auto e = std::make_unique<Expr>(Expr::Kind::kInList);
    e->negated = negated;
    e->args.push_back(std::move(left));
    do {
      XNF_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      e->args.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
    XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return ExprPtr(std::move(e));
  }
  if (negated) return MakeError("expected LIKE, IN, or BETWEEN after NOT");
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  XNF_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinOp op;
    if (Peek().kind == TokenKind::kPlus) {
      op = BinOp::kAdd;
    } else if (Peek().kind == TokenKind::kMinus) {
      op = BinOp::kSub;
    } else if (Peek().kind == TokenKind::kConcat) {
      op = BinOp::kConcat;
    } else {
      break;
    }
    Consume();
    XNF_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = Expr::Binary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  XNF_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    BinOp op;
    if (Peek().kind == TokenKind::kStar) {
      op = BinOp::kMul;
    } else if (Peek().kind == TokenKind::kSlash) {
      op = BinOp::kDiv;
    } else if (Peek().kind == TokenKind::kPercent) {
      op = BinOp::kMod;
    } else {
      break;
    }
    Consume();
    XNF_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = Expr::Binary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Accept(TokenKind::kMinus)) {
    XNF_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    auto e = std::make_unique<Expr>(Expr::Kind::kUnary);
    e->un_op = UnOp::kNeg;
    e->args.push_back(std::move(inner));
    return ExprPtr(std::move(e));
  }
  Accept(TokenKind::kPlus);
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePathTail(std::string start) {
  auto path = std::make_unique<PathExpr>();
  path->start = std::move(start);
  while (Accept(TokenKind::kArrow)) {
    PathStep step;
    if (Accept(TokenKind::kLParen)) {
      Token name = Consume();
      if (name.kind != TokenKind::kIdentifier) {
        return MakeError("expected node name in qualified path step");
      }
      step.name = name.text;
      if (Peek().kind == TokenKind::kIdentifier && !IsReservedWord(Peek())) {
        step.corr = Consume().text;
      }
      if (AcceptKeyword("where")) {
        XNF_ASSIGN_OR_RETURN(step.predicate, ParseExpr());
      }
      XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    } else {
      Token name = Consume();
      if (name.kind != TokenKind::kIdentifier) {
        return MakeError("expected name in path expression");
      }
      step.name = name.text;
    }
    path->steps.push_back(std::move(step));
  }
  if (path->steps.empty()) {
    return MakeError("path expression requires at least one '->' step");
  }
  auto e = std::make_unique<Expr>(Expr::Kind::kPath);
  e->path = std::move(path);
  return ExprPtr(std::move(e));
}

Result<ExprPtr> Parser::ParseFunctionCall(std::string name) {
  auto e = std::make_unique<Expr>(Expr::Kind::kFuncCall);
  e->column = ToLower(name);
  // consume '('
  XNF_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
  if (Accept(TokenKind::kRParen)) return ExprPtr(std::move(e));
  e->distinct_arg = AcceptKeyword("distinct");
  do {
    if (Peek().kind == TokenKind::kStar) {
      Consume();
      e->args.push_back(std::make_unique<Expr>(Expr::Kind::kStar));
    } else {
      XNF_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      e->args.push_back(std::move(arg));
    }
  } while (Accept(TokenKind::kComma));
  XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  return ExprPtr(std::move(e));
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      Token tok = Consume();
      return Expr::Lit(Value::Int(tok.int_value));
    }
    case TokenKind::kFloat: {
      Token tok = Consume();
      return Expr::Lit(Value::Double(tok.double_value));
    }
    case TokenKind::kString: {
      Token tok = Consume();
      return Expr::Lit(Value::String(tok.text));
    }
    case TokenKind::kQuestion: {
      Consume();
      auto e = std::make_unique<Expr>(Expr::Kind::kParam);
      e->param_index = param_count_++;
      return ExprPtr(std::move(e));
    }
    case TokenKind::kLParen: {
      Consume();
      if (Peek().Is("select")) {
        auto e = std::make_unique<Expr>(Expr::Kind::kScalarSubquery);
        XNF_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
        XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return ExprPtr(std::move(e));
      }
      XNF_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    case TokenKind::kIdentifier:
      break;
    default:
      return MakeError("unexpected token " + t.Describe() +
                       " in expression");
  }

  // Identifier-led constructs.
  if (t.Is("null")) {
    Consume();
    return Expr::Lit(Value::Null());
  }
  if (t.Is("true")) {
    Consume();
    return Expr::Lit(Value::Bool(true));
  }
  if (t.Is("false")) {
    Consume();
    return Expr::Lit(Value::Bool(false));
  }
  if (t.Is("exists")) {
    Consume();
    if (Peek().kind == TokenKind::kLParen && Peek(1).Is("select")) {
      Consume();  // '('
      auto e = std::make_unique<Expr>(Expr::Kind::kExistsSubquery);
      XNF_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return ExprPtr(std::move(e));
    }
    // EXISTS <path expression>  (XNF form, §3.5). An optional layer of
    // parentheses around the path is tolerated.
    bool parenthesized = Accept(TokenKind::kLParen);
    Token start = Consume();
    if (start.kind != TokenKind::kIdentifier) {
      return MakeError("expected subquery or path expression after EXISTS");
    }
    XNF_ASSIGN_OR_RETURN(ExprPtr path_expr, ParsePathTail(start.text));
    if (parenthesized) {
      XNF_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    auto e = std::make_unique<Expr>(Expr::Kind::kExistsPath);
    e->path = std::move(path_expr->path);
    return ExprPtr(std::move(e));
  }
  if (t.Is("case")) {
    Consume();
    auto e = std::make_unique<Expr>(Expr::Kind::kCase);
    while (AcceptKeyword("when")) {
      XNF_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      XNF_RETURN_IF_ERROR(ExpectKeyword("then"));
      XNF_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->args.push_back(std::move(when));
      e->args.push_back(std::move(then));
    }
    if (e->args.empty()) return MakeError("CASE requires at least one WHEN");
    if (AcceptKeyword("else")) {
      XNF_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
      e->args.push_back(std::move(els));
    }
    XNF_RETURN_IF_ERROR(ExpectKeyword("end"));
    return ExprPtr(std::move(e));
  }

  if (IsReservedWord(t)) {
    return MakeError("unexpected keyword " + t.Describe() + " in expression");
  }
  Token name = Consume();
  // Function call?
  if (Peek().kind == TokenKind::kLParen) {
    return ParseFunctionCall(name.text);
  }
  // Path expression? ident->...
  if (Peek().kind == TokenKind::kArrow) {
    return ParsePathTail(name.text);
  }
  // Qualified column: ident.ident (possibly followed by a path arrow, which
  // is not part of the column).
  if (Peek().kind == TokenKind::kDot) {
    Consume();
    Token col = Consume();
    if (col.kind != TokenKind::kIdentifier) {
      return MakeError("expected column name after '.'");
    }
    return Expr::ColRef(name.text, col.text);
  }
  return Expr::ColRef("", name.text);
}

}  // namespace xnf::sql
