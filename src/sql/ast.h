#ifndef XNF_SQL_AST_H_
#define XNF_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"

namespace xnf::sql {

struct Expr;
struct SelectStmt;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kConcat,
};

enum class UnOp { kNot, kNeg };

// One step of an XNF path expression (§3.5 of the paper). A step names either
// a relationship or a component table; parenthesized steps carry a
// correlation name and a qualification predicate:
//   d->employment->(Xemp e WHERE e.sal < 2000)->projmanagement->Xproj
struct PathStep {
  std::string name;      // relationship or node name
  std::string corr;      // correlation variable, "" if none
  ExprPtr predicate;     // qualification, null if none
};

// A path expression. `start` is either a correlation variable bound by the
// enclosing SUCH THAT / cursor context, or a component table name (the
// "all roots" form, e.g. Xdept->employment->Xemp).
struct PathExpr {
  std::string start;
  std::vector<PathStep> steps;
};

// Scalar / predicate expression tree shared by SQL and XNF.
struct Expr {
  enum class Kind {
    kLiteral,         // value
    kColumnRef,       // [table.]column
    kStar,            // * (only inside COUNT(*))
    kBinary,          // args[0] op args[1]
    kUnary,           // op args[0]
    kFuncCall,        // name(args...); aggregates COUNT/SUM/AVG/MIN/MAX too
    kIsNull,          // args[0] IS [NOT] NULL         (negated flag)
    kLike,            // args[0] [NOT] LIKE args[1]    (negated flag)
    kBetween,         // args[0] BETWEEN args[1] AND args[2] (negated flag)
    kInList,          // args[0] IN (args[1..])        (negated flag)
    kInSubquery,      // args[0] IN (SELECT ...)       (negated flag)
    kExistsSubquery,  // EXISTS (SELECT ...)           (negated flag)
    kScalarSubquery,  // (SELECT single value)
    kCase,            // CASE WHEN a THEN b [WHEN..] [ELSE e] END; args hold
                      // when/then pairs then optional else
    kPath,            // XNF path expression (valid in XNF contexts only)
    kExistsPath,      // EXISTS <path expression>      (negated flag)
    kParam,           // ? prepared-statement parameter
  };

  Kind kind;
  Value literal;                  // kLiteral
  std::string table;              // kColumnRef qualifier ("" if none)
  std::string column;             // kColumnRef name / kFuncCall name
  BinOp bin_op = BinOp::kEq;      // kBinary
  UnOp un_op = UnOp::kNot;        // kUnary
  bool negated = false;           // IS NOT NULL / NOT IN / NOT LIKE / ...
  bool distinct_arg = false;      // COUNT(DISTINCT x)
  int param_index = -1;           // kParam: 0-based occurrence order
  std::vector<ExprPtr> args;
  std::unique_ptr<SelectStmt> subquery;  // kIn/kExists/kScalarSubquery
  std::unique_ptr<PathExpr> path;        // kPath / kExistsPath

  explicit Expr(Kind k) : kind(k) {}

  static ExprPtr Lit(Value v) {
    auto e = std::make_unique<Expr>(Kind::kLiteral);
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr ColRef(std::string tbl, std::string col) {
    auto e = std::make_unique<Expr>(Kind::kColumnRef);
    e->table = std::move(tbl);
    e->column = std::move(col);
    return e;
  }
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>(Kind::kBinary);
    e->bin_op = op;
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    return e;
  }

  // Deep copy (needed when one parsed view body is instantiated many times).
  ExprPtr Clone() const;

  // Diagnostic rendering, approximately re-parsable.
  std::string ToString() const;
};

enum class JoinType { kInner, kLeft };

// FROM-clause item: base table / view reference, derived table, or join.
struct TableRef {
  enum class Kind { kNamed, kSubquery, kJoin };
  Kind kind = Kind::kNamed;

  // kNamed
  std::string name;
  // alias applies to kNamed and kSubquery; "" = default
  std::string alias;
  // kSubquery
  std::unique_ptr<SelectStmt> subquery;
  // kJoin
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  ExprPtr on;

  std::unique_ptr<TableRef> Clone() const;
};

struct SelectItem {
  bool star = false;        // SELECT * or qualifier.*
  std::string star_table;   // qualifier for qualified star ("" = all)
  ExprPtr expr;             // when !star
  std::string alias;        // output column name ("" = derive)
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

// SELECT statement. Set-operation chains (UNION [ALL] / INTERSECT /
// EXCEPT, left-associative) via `union_next`; `set_op` is the operator
// linking this statement to `union_next`.
struct SelectStmt {
  enum class SetOp { kUnionAll, kUnion, kIntersect, kExcept };

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
  bool union_all = false;  // kept in sync with set_op for convenience
  SetOp set_op = SetOp::kUnion;
  std::unique_ptr<SelectStmt> union_next;

  std::unique_ptr<SelectStmt> Clone() const;
  std::string ToString() const;
};

struct ColumnDef {
  std::string name;
  Type type = Type::kInt;
  bool not_null = false;
  bool primary_key = false;
};

// Physical layout requested by CREATE TABLE ... USING {row|column};
// kDefault means no clause (the engine default applies).
enum class StorageClause { kDefault, kRow, kColumn };

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnDef> columns;
  StorageClause storage = StorageClause::kDefault;
  // CREATE TABLE ... CLUSTER BY col: co-cluster rows sharing this column's
  // value into the same row groups (columnar tables only). Empty = none.
  std::string cluster_by;
};

struct CreateIndexStmt {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  bool ordered = false;  // CREATE [UNIQUE] [ORDERED] INDEX
};

// CREATE VIEW captures the raw definition text (after AS) so the catalog can
// store and re-parse it; `is_xnf` marks composite-object views.
struct CreateViewStmt {
  std::string name;
  std::string definition;
  bool is_xnf = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;          // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows;    // VALUES form
  std::unique_ptr<SelectStmt> select;        // INSERT ... SELECT form
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct DropStmt {
  bool is_view = false;
  std::string name;
};

// EXPLAIN [ANALYZE] <select or XNF statement>. SQL bodies are parsed in
// place; XNF bodies ("OUT OF ...") are captured verbatim and handed to the
// XNF parser by the execution layer (mirroring CREATE VIEW ... AS OUT OF).
struct ExplainStmt {
  bool analyze = false;
  std::unique_ptr<SelectStmt> select;  // null when the body is XNF
  std::string xnf_text;                // non-empty when the body is XNF
};

// Tagged union of all parsed SQL statements. XNF statements live in
// xnf/ast.h and are produced by the XNF parser.
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateIndex,
    kCreateView,
    kInsert,
    kUpdate,
    kDelete,
    kDrop,
    kExplain,
  };
  Kind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<ExplainStmt> explain;
};

}  // namespace xnf::sql

#endif  // XNF_SQL_AST_H_
