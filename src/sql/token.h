#ifndef XNF_SQL_TOKEN_H_
#define XNF_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xnf::sql {

enum class TokenKind {
  kEnd = 0,
  kIdentifier,  // unquoted name or keyword (keywords matched by text)
  kInteger,
  kFloat,
  kString,  // 'quoted literal' with '' escape
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,       // =
  kNe,       // <> or !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kArrow,    // ->  (XNF path expressions)
  kConcat,   // ||
  kQuestion, // ?  (prepared-statement parameter)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier text (original case) / literal spelling
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  // byte offset in the source
  int line = 1;
  int column = 1;

  // Case-insensitive keyword/identifier match.
  bool Is(const char* keyword) const;
  bool IsKind(TokenKind k) const { return kind == k; }

  std::string Describe() const;
};

}  // namespace xnf::sql

#endif  // XNF_SQL_TOKEN_H_
