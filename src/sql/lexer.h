#ifndef XNF_SQL_LEXER_H_
#define XNF_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace xnf::sql {

// Tokenizes SQL/XNF source text. Comments: `-- to end of line` and
// `/* ... */`. Identifiers are [A-Za-z_][A-Za-z0-9_]* and case-insensitive;
// "double quoted" identifiers preserve case and may contain any character
// (the paper's dashed names like ALL-DEPS are written ALL_DEPS here, or
// quoted "ALL-DEPS"). String literals use single quotes with '' escaping.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace xnf::sql

#endif  // XNF_SQL_LEXER_H_
