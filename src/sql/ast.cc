#include "sql/ast.h"

namespace xnf::sql {

namespace {

std::unique_ptr<PathExpr> ClonePath(const PathExpr& p) {
  auto out = std::make_unique<PathExpr>();
  out->start = p.start;
  for (const PathStep& s : p.steps) {
    PathStep step;
    step.name = s.name;
    step.corr = s.corr;
    if (s.predicate) step.predicate = s.predicate->Clone();
    out->steps.push_back(std::move(step));
  }
  return out;
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kConcat:
      return "||";
  }
  return "?";
}

}  // namespace

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>(kind);
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->negated = negated;
  out->distinct_arg = distinct_arg;
  out->param_index = param_index;
  for (const ExprPtr& a : args) {
    out->args.push_back(a ? a->Clone() : nullptr);
  }
  if (subquery) out->subquery = subquery->Clone();
  if (path) out->path = ClonePath(*path);
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kParam:
      return "?";
    case Kind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case Kind::kStar:
      return "*";
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + BinOpName(bin_op) + " " +
             args[1]->ToString() + ")";
    case Kind::kUnary:
      return un_op == UnOp::kNot ? "(NOT " + args[0]->ToString() + ")"
                                 : "(-" + args[0]->ToString() + ")";
    case Kind::kFuncCall: {
      std::string s = column + "(";
      if (distinct_arg) s += "DISTINCT ";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kIsNull:
      return "(" + args[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
             ")";
    case Kind::kLike:
      return "(" + args[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             args[1]->ToString() + ")";
    case Kind::kBetween:
      return "(" + args[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             args[1]->ToString() + " AND " + args[2]->ToString() + ")";
    case Kind::kInList: {
      std::string s = "(" + args[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) s += ", ";
        s += args[i]->ToString();
      }
      return s + "))";
    }
    case Kind::kInSubquery:
      return "(" + args[0]->ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + "))";
    case Kind::kExistsSubquery:
      return std::string(negated ? "(NOT EXISTS (" : "(EXISTS (") +
             subquery->ToString() + "))";
    case Kind::kScalarSubquery:
      return "(" + subquery->ToString() + ")";
    case Kind::kCase: {
      std::string s = "CASE";
      size_t n = args.size();
      bool has_else = n % 2 == 1;
      size_t pairs = n / 2;
      for (size_t i = 0; i < pairs; ++i) {
        s += " WHEN " + args[2 * i]->ToString() + " THEN " +
             args[2 * i + 1]->ToString();
      }
      if (has_else) s += " ELSE " + args[n - 1]->ToString();
      return s + " END";
    }
    case Kind::kPath:
    case Kind::kExistsPath: {
      std::string s = kind == Kind::kExistsPath
                          ? std::string(negated ? "NOT EXISTS " : "EXISTS ")
                          : "";
      s += path->start;
      for (const PathStep& step : path->steps) {
        s += "->";
        if (step.predicate || !step.corr.empty()) {
          s += "(" + step.name;
          if (!step.corr.empty()) s += " " + step.corr;
          if (step.predicate) s += " WHERE " + step.predicate->ToString();
          s += ")";
        } else {
          s += step.name;
        }
      }
      return s;
    }
  }
  return "?";
}

std::unique_ptr<TableRef> TableRef::Clone() const {
  auto out = std::make_unique<TableRef>();
  out->kind = kind;
  out->name = name;
  out->alias = alias;
  if (subquery) out->subquery = subquery->Clone();
  out->join_type = join_type;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  if (on) out->on = on->Clone();
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const SelectItem& item : items) {
    SelectItem copy;
    copy.star = item.star;
    copy.star_table = item.star_table;
    if (item.expr) copy.expr = item.expr->Clone();
    copy.alias = item.alias;
    out->items.push_back(std::move(copy));
  }
  for (const auto& t : from) out->from.push_back(t->Clone());
  if (where) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  for (const auto& o : order_by) {
    OrderItem item;
    item.expr = o.expr->Clone();
    item.ascending = o.ascending;
    out->order_by.push_back(std::move(item));
  }
  out->limit = limit;
  out->offset = offset;
  out->union_all = union_all;
  out->set_op = set_op;
  if (union_next) out->union_next = union_next->Clone();
  return out;
}

namespace {

std::string TableRefToString(const TableRef& t) {
  switch (t.kind) {
    case TableRef::Kind::kNamed:
      return t.alias.empty() ? t.name : t.name + " " + t.alias;
    case TableRef::Kind::kSubquery:
      return "(" + t.subquery->ToString() + ") " + t.alias;
    case TableRef::Kind::kJoin:
      return TableRefToString(*t.left) +
             (t.join_type == JoinType::kLeft ? " LEFT JOIN " : " JOIN ") +
             TableRefToString(*t.right) + " ON " + t.on->ToString();
  }
  return "?";
}

}  // namespace

std::string SelectStmt::ToString() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += ", ";
    const SelectItem& item = items[i];
    if (item.star) {
      s += item.star_table.empty() ? "*" : item.star_table + ".*";
    } else {
      s += item.expr->ToString();
      if (!item.alias.empty()) s += " AS " + item.alias;
    }
  }
  if (!from.empty()) {
    s += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) s += ", ";
      s += TableRefToString(*from[i]);
    }
  }
  if (where) s += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    s += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += group_by[i]->ToString();
    }
  }
  if (having) s += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    s += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += order_by[i].expr->ToString();
      if (!order_by[i].ascending) s += " DESC";
    }
  }
  if (limit.has_value()) s += " LIMIT " + std::to_string(*limit);
  if (offset.has_value()) s += " OFFSET " + std::to_string(*offset);
  if (union_next) {
    switch (set_op) {
      case SetOp::kUnionAll:
        s += " UNION ALL ";
        break;
      case SetOp::kUnion:
        s += " UNION ";
        break;
      case SetOp::kIntersect:
        s += " INTERSECT ";
        break;
      case SetOp::kExcept:
        s += " EXCEPT ";
        break;
    }
    s += union_next->ToString();
  }
  return s;
}

}  // namespace xnf::sql
