#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace xnf::sql {

bool Token::Is(const char* keyword) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, keyword);
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kEnd:
      return "<end of input>";
    case TokenKind::kIdentifier:
      return "'" + text + "'";
    case TokenKind::kInteger:
    case TokenKind::kFloat:
    case TokenKind::kString:
      return text;
    default:
      return "'" + text + "'";
  }
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      XNF_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.offset = pos_;
      tok.line = line_;
      tok.column = column_;
      if (pos_ >= input_.size()) {
        tok.kind = TokenKind::kEnd;
        tokens.push_back(tok);
        return tokens;
      }
      char c = input_[pos_];
      if (IsIdentStart(c)) {
        size_t start = pos_;
        while (pos_ < input_.size() && IsIdentChar(input_[pos_])) Advance();
        tok.kind = TokenKind::kIdentifier;
        tok.text = input_.substr(start, pos_ - start);
      } else if (c == '"') {
        Advance();
        size_t start = pos_;
        while (pos_ < input_.size() && input_[pos_] != '"') Advance();
        if (pos_ >= input_.size()) {
          return Error("unterminated quoted identifier");
        }
        tok.kind = TokenKind::kIdentifier;
        tok.text = input_.substr(start, pos_ - start);
        Advance();  // closing quote
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        XNF_RETURN_IF_ERROR(LexNumber(&tok));
      } else if (c == '\'') {
        XNF_RETURN_IF_ERROR(LexString(&tok));
      } else {
        XNF_RETURN_IF_ERROR(LexSymbol(&tok));
      }
      tokens.push_back(std::move(tok));
    }
  }

 private:
  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  Status SkipWhitespaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '-') {
        while (pos_ < input_.size() && input_[pos_] != '\n') Advance();
      } else if (c == '/' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '*') {
        Advance();
        Advance();
        while (pos_ + 1 < input_.size() &&
               !(input_[pos_] == '*' && input_[pos_ + 1] == '/')) {
          Advance();
        }
        if (pos_ + 1 >= input_.size()) {
          return Status::ParseError("unterminated block comment");
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Status LexNumber(Token* tok) {
    size_t start = pos_;
    bool is_float = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      Advance();
    }
    if (pos_ < input_.size() && input_[pos_] == '.' &&
        pos_ + 1 < input_.size() &&
        std::isdigit(static_cast<unsigned char>(input_[pos_ + 1]))) {
      is_float = true;
      Advance();
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        Advance();
      }
    }
    if (pos_ < input_.size() &&
        (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      size_t save = pos_;
      Advance();
      if (pos_ < input_.size() && (input_[pos_] == '+' || input_[pos_] == '-')) {
        Advance();
      }
      if (pos_ < input_.size() &&
          std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        is_float = true;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          Advance();
        }
      } else {
        pos_ = save;  // 'e' belongs to a following identifier
      }
    }
    tok->text = input_.substr(start, pos_ - start);
    if (is_float) {
      tok->kind = TokenKind::kFloat;
      tok->double_value = std::strtod(tok->text.c_str(), nullptr);
    } else {
      tok->kind = TokenKind::kInteger;
      tok->int_value = std::strtoll(tok->text.c_str(), nullptr, 10);
    }
    return Status::Ok();
  }

  Status LexString(Token* tok) {
    Advance();  // opening quote
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\'') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
          out += '\'';
          Advance();
          Advance();
          continue;
        }
        Advance();
        tok->kind = TokenKind::kString;
        tok->text = std::move(out);
        return Status::Ok();
      }
      out += c;
      Advance();
    }
    return Error("unterminated string literal");
  }

  Status LexSymbol(Token* tok) {
    char c = input_[pos_];
    auto two = [&](char second) {
      return pos_ + 1 < input_.size() && input_[pos_ + 1] == second;
    };
    switch (c) {
      case '(':
        tok->kind = TokenKind::kLParen;
        break;
      case ')':
        tok->kind = TokenKind::kRParen;
        break;
      case ',':
        tok->kind = TokenKind::kComma;
        break;
      case '.':
        tok->kind = TokenKind::kDot;
        break;
      case ';':
        tok->kind = TokenKind::kSemicolon;
        break;
      case '?':
        tok->kind = TokenKind::kQuestion;
        break;
      case '*':
        tok->kind = TokenKind::kStar;
        break;
      case '+':
        tok->kind = TokenKind::kPlus;
        break;
      case '%':
        tok->kind = TokenKind::kPercent;
        break;
      case '-':
        if (two('>')) {
          tok->kind = TokenKind::kArrow;
          tok->text = "->";
          Advance();
          Advance();
          return Status::Ok();
        }
        tok->kind = TokenKind::kMinus;
        break;
      case '/':
        tok->kind = TokenKind::kSlash;
        break;
      case '=':
        tok->kind = TokenKind::kEq;
        break;
      case '<':
        if (two('>')) {
          tok->kind = TokenKind::kNe;
          tok->text = "<>";
          Advance();
          Advance();
          return Status::Ok();
        }
        if (two('=')) {
          tok->kind = TokenKind::kLe;
          tok->text = "<=";
          Advance();
          Advance();
          return Status::Ok();
        }
        tok->kind = TokenKind::kLt;
        break;
      case '>':
        if (two('=')) {
          tok->kind = TokenKind::kGe;
          tok->text = ">=";
          Advance();
          Advance();
          return Status::Ok();
        }
        tok->kind = TokenKind::kGt;
        break;
      case '!':
        if (two('=')) {
          tok->kind = TokenKind::kNe;
          tok->text = "!=";
          Advance();
          Advance();
          return Status::Ok();
        }
        return Error("unexpected character '!'");
      case '|':
        if (two('|')) {
          tok->kind = TokenKind::kConcat;
          tok->text = "||";
          Advance();
          Advance();
          return Status::Ok();
        }
        return Error("unexpected character '|'");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
    tok->text = std::string(1, c);
    Advance();
    return Status::Ok();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  const std::string& input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  return LexerImpl(input).Run();
}

}  // namespace xnf::sql
