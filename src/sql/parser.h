#ifndef XNF_SQL_PARSER_H_
#define XNF_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace xnf::sql {

// Recursive-descent parser for the SQL subset (and the expression grammar
// shared with XNF, including path expressions). The XNF statement grammar
// lives in xnf/parser.h and drives this parser through the public cursor API.
class Parser {
 public:
  // Lexes `input`; a lex failure is reported by the first Parse* call.
  explicit Parser(std::string input);

  Parser(const Parser&) = delete;
  Parser& operator=(const Parser&) = delete;

  // Parses one complete statement (consuming a trailing ';' if present).
  Result<Statement> ParseStatement();

  // Parses all statements to end of input.
  Result<std::vector<Statement>> ParseScript();

  // --- Piecewise API (used by the XNF parser and for embedded queries) ---

  // Full SELECT (with UNION chain); does not require end-of-input.
  Result<std::unique_ptr<SelectStmt>> ParseSelect();

  // Expression with full precedence, including XNF path expressions.
  Result<ExprPtr> ParseExpr();

  // Cursor access.
  const Token& Peek(size_t ahead = 0) const;
  Token Consume();
  bool Accept(TokenKind kind);
  bool AcceptKeyword(const char* keyword);
  Status Expect(TokenKind kind, const char* what);
  Status ExpectKeyword(const char* keyword);
  bool AtEnd() const;
  // Byte offset in the source of the next unconsumed token (for capturing
  // view definition text verbatim).
  size_t CurrentOffset() const;
  const std::string& input() const { return input_; }
  // Skips tokens up to (not including) the next top-level ';' or end.
  void SkipToStatementEnd();

  Status MakeError(const std::string& message) const;

  // True if `token` is a word that cannot be used as an implicit alias.
  static bool IsReservedWord(const Token& token);

 private:
  Result<Statement> ParseCreate();
  Result<Statement> ParseExplain();
  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<Statement> ParseDrop();
  Result<std::unique_ptr<SelectStmt>> ParseSelectCore();
  Result<std::unique_ptr<TableRef>> ParseTableRef();
  Result<std::unique_ptr<TableRef>> ParseTableRefPrimary();
  Result<Type> ParseType();

  // Expression precedence levels.
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParsePathTail(std::string start);
  Result<ExprPtr> ParseFunctionCall(std::string name);

  std::string input_;
  Status lex_status_;
  int param_count_ = 0;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace xnf::sql

#endif  // XNF_SQL_PARSER_H_
