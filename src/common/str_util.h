#ifndef XNF_COMMON_STR_UTIL_H_
#define XNF_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace xnf {

// ASCII lowercase copy. Identifiers in SQL/XNF are case-insensitive; the
// engine canonicalizes them through this.
std::string ToLower(const std::string& s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// SQL LIKE pattern match: '%' matches any run, '_' matches one char.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace xnf

#endif  // XNF_COMMON_STR_UTIL_H_
