#include "common/str_util.h"

#include <cctype>

namespace xnf {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {

bool LikeMatchImpl(const char* t, const char* te, const char* p,
                   const char* pe) {
  while (p != pe) {
    if (*p == '%') {
      // Collapse consecutive '%'.
      while (p != pe && *p == '%') ++p;
      if (p == pe) return true;
      for (const char* s = t; s <= te; ++s) {
        if (LikeMatchImpl(s, te, p, pe)) return true;
      }
      return false;
    }
    if (t == te) return false;
    if (*p != '_' && *p != *t) return false;
    ++p;
    ++t;
  }
  return t == te;
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  return LikeMatchImpl(text.data(), text.data() + text.size(), pattern.data(),
                       pattern.data() + pattern.size());
}

}  // namespace xnf
