#include "common/trace.h"

#include <sstream>

namespace xnf {

void CollectingTraceSink::BeginSpan(const std::string& name,
                                    const std::string& detail) {
  Span span;
  span.name = name;
  span.detail = detail;
  span.depth = static_cast<int>(open_.size());
  span.parent = open_.empty() ? -1 : open_.back();
  spans_.push_back(std::move(span));
  open_.push_back(static_cast<int>(spans_.size()) - 1);
}

void CollectingTraceSink::EndSpan(uint64_t duration_ns) {
  if (open_.empty()) return;  // unbalanced EndSpan; ignore
  Span& span = spans_[open_.back()];
  span.duration_ns = duration_ns;
  span.closed = true;
  open_.pop_back();
}

void CollectingTraceSink::Clear() {
  spans_.clear();
  open_.clear();
}

std::string CollectingTraceSink::ToString() const {
  std::ostringstream out;
  for (const Span& span : spans_) {
    for (int i = 0; i < span.depth; ++i) out << "  ";
    out << span.name;
    if (span.closed) {
      out << "  [" << span.duration_ns / 1000 << "."
          << (span.duration_ns / 100) % 10 << "us]";
    } else {
      out << "  [open]";
    }
    if (!span.detail.empty()) out << "  " << span.detail;
    out << "\n";
  }
  return out.str();
}

}  // namespace xnf
