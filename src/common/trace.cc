#include "common/trace.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace xnf {

namespace {

// JSON string escape for span names and details (statement text can hold
// quotes, backslashes, newlines).
void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

// Nanoseconds rendered as microseconds with three decimals ("12.345") —
// the unit the trace-event format expects.
void AppendUs(uint64_t ns, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  *out += buf;
}

}  // namespace

void CollectingTraceSink::BeginSpan(const std::string& name,
                                    const std::string& detail) {
  if (spans_.size() >= max_spans_) {
    // At capacity: count the span and push a sentinel so the matching
    // EndSpan is absorbed without unbalancing the kept spans.
    ++dropped_spans_;
    open_.push_back(-1);
    return;
  }
  Span span;
  span.name = name;
  span.detail = detail;
  span.depth = static_cast<int>(open_.size());
  span.parent = open_.empty() ? -1 : open_.back();
  span.begin_ns = NowNs();
  spans_.push_back(std::move(span));
  open_.push_back(static_cast<int>(spans_.size()) - 1);
}

void CollectingTraceSink::EndSpan(uint64_t duration_ns) {
  if (open_.empty()) return;  // unbalanced EndSpan; ignore
  int index = open_.back();
  open_.pop_back();
  if (index < 0) return;  // the matching BeginSpan was dropped at the cap
  Span& span = spans_[index];
  span.duration_ns = duration_ns;
  span.end_ns = NowNs();
  span.closed = true;
}

void CollectingTraceSink::Clear() {
  spans_.clear();
  open_.clear();
  dropped_spans_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

std::string CollectingTraceSink::ToString() const {
  std::ostringstream out;
  for (const Span& span : spans_) {
    for (int i = 0; i < span.depth; ++i) out << "  ";
    out << span.name;
    if (span.closed) {
      out << "  [" << span.duration_ns / 1000 << "."
          << (span.duration_ns / 100) % 10 << "us]";
    } else {
      out << "  [open]";
    }
    if (!span.detail.empty()) out << "  " << span.detail;
    out << "\n";
  }
  if (dropped_spans_ > 0) {
    out << "(" << dropped_spans_ << " span(s) dropped at cap " << max_spans_
        << ")\n";
  }
  return out.str();
}

std::string CollectingTraceSink::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(span.name, &out);
    out += "\",\"cat\":\"sqlxnf\",\"ph\":\"X\",\"ts\":";
    AppendUs(span.begin_ns, &out);
    out += ",\"dur\":";
    AppendUs(span.closed ? span.end_ns - span.begin_ns : 0, &out);
    out += ",\"pid\":1,\"tid\":1";
    if (!span.detail.empty()) {
      out += ",\"args\":{\"detail\":\"";
      AppendJsonEscaped(span.detail, &out);
      out += "\"}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace xnf
