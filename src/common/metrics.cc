#include "common/metrics.h"

#include <algorithm>

namespace xnf {

namespace {

int64_t ClampToInt64(uint64_t v) {
  constexpr uint64_t kMax =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  return static_cast<int64_t>(std::min(v, kMax));
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterGaugeCallback(const std::string& name,
                                            std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[name] = std::move(fn);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + callbacks_.size() +
              histograms_.size() * 4);
  for (const auto& [name, c] : counters_) {
    out.push_back({name, "counter", std::nullopt, std::nullopt,
                   ClampToInt64(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, "gauge", std::nullopt, std::nullopt, g->value()});
  }
  for (const auto& [name, fn] : callbacks_) {
    out.push_back({name, "gauge", std::nullopt, std::nullopt, fn()});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name, "histogram_count", std::nullopt, std::nullopt,
                   ClampToInt64(h->count())});
    out.push_back({name, "histogram_sum", std::nullopt, std::nullopt,
                   ClampToInt64(h->sum())});
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t n = h->bucket(b);
      if (n == 0) continue;
      out.push_back({name, "histogram_bucket",
                     ClampToInt64(Histogram::BucketLo(b)),
                     ClampToInt64(Histogram::BucketHi(b)), ClampToInt64(n)});
    }
  }
  // The per-type maps are each sorted; one stable sort by name merges them
  // into a deterministic listing (kind breaks ties so counter/gauge
  // collisions on one name keep a stable order too).
  std::stable_sort(out.begin(), out.end(),
                   [](const Sample& a, const Sample& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.kind < b.kind;
                   });
  return out;
}

}  // namespace xnf
