#ifndef XNF_COMMON_SCHEMA_H_
#define XNF_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace xnf {

// A column descriptor. `table` is the (possibly empty) qualifier used for
// name resolution of derived schemas; base tables set it to the table name.
struct Column {
  std::string name;
  Type type = Type::kNull;
  std::string table;      // qualifier for resolution ("" if anonymous)
  bool not_null = false;  // NOT NULL constraint (base tables only)
  bool primary_key = false;

  Column() = default;
  Column(std::string n, Type t) : name(std::move(n)), type(t) {}
  Column(std::string n, Type t, std::string tbl)
      : name(std::move(n)), type(t), table(std::move(tbl)) {}
};

// An ordered list of columns describing a table or an operator output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  // Finds the index of `name`, optionally qualified by `table`
  // (case-insensitive). Returns kNotFound if absent and kInvalidArgument if
  // the unqualified name is ambiguous.
  Result<size_t> Resolve(const std::string& table,
                         const std::string& name) const;

  // Index of the first column named `name` (unqualified, case-insensitive),
  // or nullopt.
  std::optional<size_t> Find(const std::string& name) const;

  // Index of the primary key column, or nullopt if none declared.
  std::optional<size_t> PrimaryKeyIndex() const;

  // Re-qualifies all columns with a new table alias (used by FROM aliases).
  Schema WithQualifier(const std::string& qualifier) const;

  // Concatenation (join output schema).
  static Schema Concat(const Schema& left, const Schema& right);

  // Validates that `row` arity and types match; coerces values in place
  // (e.g. int literal into DOUBLE column) and checks NOT NULL.
  Status CheckAndCoerceRow(Row* row) const;

  // "name TYPE, name TYPE, ..." rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace xnf

#endif  // XNF_COMMON_SCHEMA_H_
