#include "common/schema.h"

#include "common/str_util.h"

namespace xnf {

Result<size_t> Schema::Resolve(const std::string& table,
                               const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!table.empty() && !EqualsIgnoreCase(c.table, table)) continue;
    if (found.has_value()) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     (table.empty() ? name
                                                    : table + "." + name) +
                                     "'");
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::NotFound("column '" +
                            (table.empty() ? name : table + "." + name) +
                            "' not found");
  }
  return *found;
}

std::optional<size_t> Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::PrimaryKeyIndex() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return i;
  }
  return std::nullopt;
}

Schema Schema::WithQualifier(const std::string& qualifier) const {
  Schema out = *this;
  for (Column& c : out.columns_) c.table = qualifier;
  return out;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const Column& c : right.columns()) out.AddColumn(c);
  return out;
}

Status Schema::CheckAndCoerceRow(Row* row) const {
  if (row->size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row->size()) +
        " does not match schema arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if ((*row)[i].is_null()) {
      if (c.not_null || c.primary_key) {
        return Status::ConstraintViolation("column '" + c.name +
                                           "' may not be NULL");
      }
      continue;
    }
    XNF_ASSIGN_OR_RETURN((*row)[i], (*row)[i].CoerceTo(c.type));
  }
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    const Column& c = columns_[i];
    if (!c.table.empty()) {
      out += c.table;
      out += ".";
    }
    out += c.name;
    out += " ";
    out += TypeName(c.type);
  }
  return out;
}

}  // namespace xnf
