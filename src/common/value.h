#ifndef XNF_COMMON_VALUE_H_
#define XNF_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace xnf {

// Column data types supported by the engine. kNull is the type of the NULL
// literal before it is coerced to a column type.
enum class Type {
  kNull = 0,
  kBool,
  kInt,     // 64-bit signed
  kDouble,  // IEEE double
  kString,  // variable-length UTF-8 (treated as bytes)
};

// Returns "NULL" / "BOOL" / "INT" / "DOUBLE" / "STRING".
const char* TypeName(Type type);

// Three-valued logic result of SQL predicates: NULL is "unknown".
enum class Tribool { kFalse = 0, kTrue = 1, kUnknown = 2 };

// Wrapping two's-complement INT arithmetic, computed through uint64 so
// signed overflow is defined behavior. Every integer evaluator — the scalar
// row engine, the reference interpreter, and the columnar kernels — must go
// through these so overflowing expressions stay bit-identical across
// engines (the differential harness compares them directly).
inline int64_t WrappingAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
inline int64_t WrappingSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
inline int64_t WrappingMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

// A single SQL value. NULL is represented by the monostate alternative and
// compares per SQL semantics (comparisons involving NULL yield kUnknown).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int() || is_double(); }

  Type type() const;

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const;  // widens kInt to double
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  // SQL comparison with three-valued logic: returns kUnknown if either side
  // is NULL; otherwise compares numerically (int/double mixed OK) or
  // lexicographically for strings. Comparing incompatible types (e.g. INT
  // with STRING) yields kUnknown.
  Tribool CompareEq(const Value& other) const;
  Tribool CompareLt(const Value& other) const;

  // Total order used for sorting / grouping / keys: NULL sorts first, then by
  // type, then by value. Unlike SQL comparison this is never "unknown".
  // Returns <0, 0, >0.
  int TotalOrderCompare(const Value& other) const;

  // Equality in the grouping sense: NULL == NULL, types must match modulo
  // int/double numeric widening.
  bool GroupEquals(const Value& other) const {
    return TotalOrderCompare(other) == 0;
  }

  size_t Hash() const;

  // SQL-ish rendering: NULL, TRUE/FALSE, 42, 4.2, 'text'.
  std::string ToString() const;

  // Coerces this value to `target` (e.g. INT literal into DOUBLE column).
  // NULL coerces to any type. Fails for lossy/meaningless conversions.
  Result<Value> CoerceTo(Type target) const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

// A tuple of values. Rows flow between executor operators by value.
using Row = std::vector<Value>;

// Hash of a full row (for hash joins / distinct / group by).
size_t HashRow(const Row& row);

// Total-order comparison of rows (lexicographic, NULLs first).
int CompareRows(const Row& a, const Row& b);

// True iff rows are equal under GroupEquals element-wise.
bool RowsEqual(const Row& a, const Row& b);

// Renders "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace xnf

#endif  // XNF_COMMON_VALUE_H_
