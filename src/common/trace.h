#ifndef XNF_COMMON_TRACE_H_
#define XNF_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xnf {

// Tracing hook for the statement pipeline (parse -> QGM build -> rewrite ->
// plan -> execute) and the XNF evaluator's per-phase work. Spans nest:
// BeginSpan/EndSpan calls are strictly bracketed, so a sink can reconstruct
// the hierarchy from call order alone. A null sink everywhere means tracing
// is off; call sites guard on the pointer, so the disabled cost is one
// branch.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Opens a span. `detail` carries span-specific context (statement text,
  // node name, ...) and may be empty.
  virtual void BeginSpan(const std::string& name,
                         const std::string& detail) = 0;

  // Closes the most recently opened span with its measured wall time.
  virtual void EndSpan(uint64_t duration_ns) = 0;
};

// RAII span: times its own lifetime and reports to the sink (if any).
class TraceScope {
 public:
  TraceScope(TraceSink* sink, const char* name, std::string detail = "")
      : sink_(sink) {
    if (sink_ != nullptr) {
      sink_->BeginSpan(name, detail);
      start_ = std::chrono::steady_clock::now();
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (sink_ != nullptr) {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      sink_->EndSpan(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
  }

 private:
  TraceSink* sink_;
  std::chrono::steady_clock::time_point start_;
};

// In-memory sink: records every span with its nesting depth so tests can
// assert on the hierarchy and the shell can print an indented timeline.
class CollectingTraceSink : public TraceSink {
 public:
  struct Span {
    std::string name;
    std::string detail;
    int depth = 0;       // 0 = top-level
    int parent = -1;     // index into spans(), -1 for top-level
    uint64_t duration_ns = 0;
    bool closed = false;
  };

  void BeginSpan(const std::string& name, const std::string& detail) override;
  void EndSpan(uint64_t duration_ns) override;

  const std::vector<Span>& spans() const { return spans_; }
  void Clear();

  // Indented timeline, one line per span in begin order:
  //   statement  [..us]  SELECT ...
  //     parse  [..us]
  std::string ToString() const;

 private:
  std::vector<Span> spans_;
  std::vector<int> open_;  // stack of indices into spans_
};

}  // namespace xnf

#endif  // XNF_COMMON_TRACE_H_
