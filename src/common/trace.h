#ifndef XNF_COMMON_TRACE_H_
#define XNF_COMMON_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xnf {

// Tracing hook for the statement pipeline (parse -> QGM build -> rewrite ->
// plan -> execute) and the XNF evaluator's per-phase work. Spans nest:
// BeginSpan/EndSpan calls are strictly bracketed, so a sink can reconstruct
// the hierarchy from call order alone. A null sink everywhere means tracing
// is off; call sites guard on the pointer, so the disabled cost is one
// branch.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Opens a span. `detail` carries span-specific context (statement text,
  // node name, ...) and may be empty.
  virtual void BeginSpan(const std::string& name,
                         const std::string& detail) = 0;

  // Closes the most recently opened span with its measured wall time.
  virtual void EndSpan(uint64_t duration_ns) = 0;
};

// RAII span: times its own lifetime and reports to the sink (if any).
class TraceScope {
 public:
  TraceScope(TraceSink* sink, const char* name, std::string detail = "")
      : sink_(sink) {
    if (sink_ != nullptr) {
      sink_->BeginSpan(name, detail);
      start_ = std::chrono::steady_clock::now();
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (sink_ != nullptr) {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      sink_->EndSpan(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
  }

 private:
  TraceSink* sink_;
  std::chrono::steady_clock::time_point start_;
};

// In-memory sink: records every span with its nesting depth so tests can
// assert on the hierarchy and the shell can print an indented timeline.
// Retention is bounded (set_max_spans, default 64k): once the cap is
// reached, further BeginSpans are counted in dropped_spans() instead of
// stored, and their matching EndSpans are absorbed so the spans actually
// kept stay correctly bracketed. ToChromeTraceJson() exports the kept spans
// in the Chrome trace-event format (load in about://tracing or Perfetto).
class CollectingTraceSink : public TraceSink {
 public:
  struct Span {
    std::string name;
    std::string detail;
    int depth = 0;       // 0 = top-level
    int parent = -1;     // index into spans(), -1 for top-level
    uint64_t duration_ns = 0;  // caller-measured (TraceScope) wall time
    // Sink-measured timestamps relative to the sink's own epoch. Unlike
    // duration_ns — which the TraceScope measures from *after* BeginSpan
    // returned — these bracket the child spans exactly, so the exported
    // trace nests without overlap artifacts.
    uint64_t begin_ns = 0;
    uint64_t end_ns = 0;
    bool closed = false;
  };

  CollectingTraceSink() : epoch_(std::chrono::steady_clock::now()) {}

  void BeginSpan(const std::string& name, const std::string& detail) override;
  void EndSpan(uint64_t duration_ns) override;

  const std::vector<Span>& spans() const { return spans_; }
  void Clear();

  // Retention cap; lowering it below the current size keeps the already
  // recorded spans and only affects future BeginSpans.
  void set_max_spans(size_t n) { max_spans_ = n; }
  size_t max_spans() const { return max_spans_; }
  // Spans discarded because the cap was reached (since the last Clear).
  uint64_t dropped_spans() const { return dropped_spans_; }

  // Indented timeline, one line per span in begin order:
  //   statement  [..us]  SELECT ...
  //     parse  [..us]
  std::string ToString() const;

  // Chrome trace-event JSON: {"traceEvents":[...]} with one complete ("X")
  // event per span, timestamps in microseconds relative to the sink's
  // epoch. Spans still open render with zero duration. The file loads
  // directly in Perfetto / about://tracing.
  std::string ToChromeTraceJson() const;

 private:
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::chrono::steady_clock::time_point epoch_;
  size_t max_spans_ = 64 * 1024;
  uint64_t dropped_spans_ = 0;
  std::vector<Span> spans_;
  std::vector<int> open_;  // stack of indices into spans_; -1 = dropped span
};

}  // namespace xnf

#endif  // XNF_COMMON_TRACE_H_
