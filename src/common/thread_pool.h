#ifndef XNF_COMMON_THREAD_POOL_H_
#define XNF_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace xnf {

class Counter;
class MetricsRegistry;

// Fixed-size worker pool for intra-query parallelism (morsel-driven scans,
// parallel hash-join build, concurrent XNF derived queries). One pool per
// Database; operators reach it through the catalog.
//
// The unit of work is a *batch* of independent tasks submitted with
// RunAll(). The submitting thread participates in its own batch — it claims
// and runs tasks alongside the workers — so a task may itself call RunAll()
// (an XNF node query running a parallel scan) without risk of deadlock:
// every batch makes progress on its caller's thread even when all workers
// are busy or the pool has zero workers.
class ThreadPool {
 public:
  // `dop` is the degree of parallelism: 1 caller thread + (dop - 1)
  // workers. dop <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int dop);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total degree of parallelism (always >= 1; 1 means fully serial).
  int dop() const { return dop_; }

  // Runs every task to completion and returns the Status of the
  // lowest-indexed failing task (or OK). Every task runs even when an
  // earlier one fails — in serial mode too, so a batch has the same side
  // effects at any DOP. Task index order — not completion order — decides
  // which error is reported, so error propagation is deterministic across
  // worker counts. With dop() == 1 the tasks run inline on the caller in
  // index order. Each task dispatch passes the `threadpool.task`
  // failpoint.
  Status RunAll(std::vector<std::function<Status()>> tasks);

  // True iff no RunAll() batch is executing or queued. The engine must be
  // quiescent between statements — the soak harness asserts this after
  // every injected failure.
  bool quiescent() const {
    if (inflight_.load(std::memory_order_acquire) != 0) return false;
    std::lock_guard<std::mutex> lock(queue_mu_);
    return queue_.empty();
  }

  // Task batches currently queued (claimable by workers). Sampled by the
  // threadpool.queue_depth metrics gauge.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(queue_mu_);
    return queue_.size();
  }

  // Resolves the threadpool.* counters (batches, tasks_dispatched,
  // tasks_stolen); null disables them. Call before the pool is shared with
  // running queries.
  void set_metrics(MetricsRegistry* metrics);

 private:
  // One RunAll() invocation: tasks are claimed by atomically bumping
  // `next`; each claimed task writes only its own `statuses` slot.
  struct Batch {
    std::vector<std::function<Status()>> tasks;
    std::vector<Status> statuses;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;  // signalled when done reaches tasks.size()
  };

  // Claims and runs tasks from `batch` until none are left unclaimed.
  // `is_worker` distinguishes pool workers from the participating RunAll
  // caller, so stolen tasks can be counted separately.
  void Work(Batch* batch, bool is_worker);

  void WorkerLoop();

  int dop_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> inflight_{0};  // RunAll() calls currently executing
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool shutdown_ = false;
  // Resolved by set_metrics; null when metrics are off.
  Counter* batches_ = nullptr;
  Counter* dispatched_ = nullptr;  // every task run, any thread
  Counter* stolen_ = nullptr;      // tasks claimed by pool workers
};

}  // namespace xnf

#endif  // XNF_COMMON_THREAD_POOL_H_
