#ifndef XNF_COMMON_RESULT_SET_H_
#define XNF_COMMON_RESULT_SET_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace xnf {

// A fully materialized query result (or any schema'd row collection).
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  // Multi-line tabular rendering for examples and debugging.
  std::string ToString() const;
};

}  // namespace xnf

#endif  // XNF_COMMON_RESULT_SET_H_
