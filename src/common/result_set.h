#ifndef XNF_COMMON_RESULT_SET_H_
#define XNF_COMMON_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace xnf {

// Counters from the execution that produced a result. Filled by the
// executor's batch drain (RunPlan); zero for hand-built row collections.
struct ExecStats {
  uint64_t rows_produced = 0;
  uint64_t batches_produced = 0;
  uint64_t buffer_pool_faults = 0;
  uint64_t buffer_pool_evictions = 0;
  // Kernel coverage summed over the plan's base-table scans: filters
  // evaluated by SIMD kernels vs all filters pushed into scans. Both stay 0
  // when no scan pushed a filter (row tables count toward scan_filters
  // only).
  uint64_t kernel_filters = 0;
  uint64_t scan_filters = 0;
};

// A fully materialized query result (or any schema'd row collection).
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;
  ExecStats stats;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  // Multi-line tabular rendering for examples and debugging.
  std::string ToString() const;
};

}  // namespace xnf

#endif  // XNF_COMMON_RESULT_SET_H_
