#ifndef XNF_COMMON_METRICS_H_
#define XNF_COMMON_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace xnf {

// Engine-wide metrics (see DESIGN.md, "Observability"). A MetricsRegistry is
// a name -> instrument map owned by the Database; subsystems resolve their
// instruments once (a mutex-guarded map lookup at wiring time) and then
// update them on the hot path with a single relaxed atomic RMW — no lock, no
// lookup, no allocation. Instruments are never deleted, so the returned
// pointers stay valid for the registry's lifetime and may be shared freely
// across threads.
//
// Two models coexist:
//   - *push*: Counter / Gauge / Histogram objects the instrumented code
//     updates inline (morsel workers, storage appends, kernel dispatch).
//   - *pull*: callback gauges registered with RegisterGaugeCallback, sampled
//     only when a snapshot is taken. Subsystems that already keep their own
//     atomics (the buffer pool, the thread pool queue) are exported this way
//     so reading a metric costs nothing until someone actually reads it.
//
// Snapshot() renders everything as flat rows; the sqlxnf_metrics system view
// is exactly that table.

// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous signed level (queue depth, resident pages, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Null-tolerant helpers: instrumented code holds a possibly-null pointer
// (metrics disabled or the subsystem constructed without a registry) and
// pays one predicted branch in that case.
inline void CounterAdd(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}

// Log2-bucketed histogram of non-negative samples (latencies in us, sizes in
// rows/bytes). Bucket 0 holds the value 0; bucket b >= 1 holds values in
// [2^(b-1), 2^b - 1]. Recording is three relaxed atomic adds; merging and
// percentile estimation need no locks because buckets only grow.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // {0} + one per bit of uint64

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  // 0 -> 0; otherwise bit_width(v) (so 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...).
  static int BucketOf(uint64_t v) { return std::bit_width(v); }
  // Inclusive value range covered by bucket `b`.
  static uint64_t BucketLo(int b) {
    return b <= 0 ? 0 : uint64_t{1} << (b - 1);
  }
  static uint64_t BucketHi(int b) {
    if (b <= 0) return 0;
    if (b >= 64) return std::numeric_limits<uint64_t>::max();
    return (uint64_t{1} << b) - 1;
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

inline void HistogramRecord(Histogram* h, uint64_t v) {
  if (h != nullptr) h->Record(v);
}

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. Pointers are stable for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Pull-model gauge: `fn` is invoked (under the registry lock) whenever a
  // snapshot is taken and must therefore not call back into the registry.
  // Re-registering a name replaces the callback (set_threads swaps pools).
  void RegisterGaugeCallback(const std::string& name,
                             std::function<int64_t()> fn);

  // One flattened metric row. Counters and gauges are single rows;
  // histograms explode into a "histogram_count" row, a "histogram_sum" row,
  // and one "histogram_bucket" row per non-empty bucket (bucket_lo/bucket_hi
  // give the bucket's inclusive value range). Values are clamped into int64
  // so they survive the trip through SQL INT columns.
  struct Sample {
    std::string name;
    std::string kind;  // counter|gauge|histogram_count|histogram_sum|
                       // histogram_bucket
    std::optional<int64_t> bucket_lo;
    std::optional<int64_t> bucket_hi;
    int64_t value = 0;
  };

  // Sorted by name (then bucket), so snapshots are deterministic given the
  // same counter states.
  std::vector<Sample> Snapshot() const;

 private:
  mutable std::mutex mu_;  // guards the maps; instruments are lock-free
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<int64_t()>> callbacks_;
};

}  // namespace xnf

#endif  // XNF_COMMON_METRICS_H_
