#include "common/result_set.h"

#include <algorithm>

namespace xnf {

std::string ResultSet::ToString() const {
  // Compute column widths.
  std::vector<std::string> headers;
  headers.reserve(schema.size());
  for (const Column& c : schema.columns()) {
    headers.push_back(c.table.empty() ? c.name : c.table + "." + c.name);
  }
  std::vector<size_t> widths(headers.size());
  for (size_t i = 0; i < headers.size(); ++i) widths[i] = headers[i].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line[i].size());
    }
    cells.push_back(std::move(line));
  }
  auto emit_row = [&](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < line.size() ? line[i] : "";
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";
  std::string out = sep + emit_row(headers) + sep;
  for (const auto& line : cells) out += emit_row(line);
  out += sep;
  out += std::to_string(rows.size()) + " row(s)\n";
  return out;
}

}  // namespace xnf
