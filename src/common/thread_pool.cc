#include "common/thread_pool.h"

#include "common/failpoint.h"
#include "common/metrics.h"

namespace xnf {

namespace {

// Every dispatch — worker, participating caller, or serial inline — goes
// through here so the `threadpool.task` failpoint fires identically at any
// DOP.
Status Dispatch(const std::function<Status()>& task) {
  XNF_FAILPOINT("threadpool.task");
  return task();
}

}  // namespace

ThreadPool::ThreadPool(int dop) {
  if (dop <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    dop = hw == 0 ? 1 : static_cast<int>(hw);
  }
  dop_ = dop;
  workers_.reserve(static_cast<size_t>(dop - 1));
  for (int i = 0; i < dop - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    batches_ = dispatched_ = stolen_ = nullptr;
    return;
  }
  batches_ = metrics->counter("threadpool.batches");
  dispatched_ = metrics->counter("threadpool.tasks_dispatched");
  stolen_ = metrics->counter("threadpool.tasks_stolen");
}

void ThreadPool::Work(Batch* batch, bool is_worker) {
  const size_t n = batch->tasks.size();
  while (true) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    CounterAdd(dispatched_);
    if (is_worker) CounterAdd(stolen_);
    batch->statuses[i] = Dispatch(batch->tasks[i]);
    // Release so the waiter's acquire on `done` sees the status write.
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      batch = queue_.front();
      // A batch stays queued while it has unclaimed tasks so several
      // workers can join in; once fully claimed it is retired here (or by
      // its RunAll caller, whichever sees it first).
      if (batch->next.load(std::memory_order_relaxed) >=
          batch->tasks.size()) {
        queue_.pop_front();
        continue;
      }
    }
    Work(batch.get(), /*is_worker=*/true);
  }
}

Status ThreadPool::RunAll(std::vector<std::function<Status()>> tasks) {
  const size_t n = tasks.size();
  if (n == 0) return Status::Ok();
  CounterAdd(batches_);
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  struct InflightGuard {
    std::atomic<size_t>* counter;
    ~InflightGuard() { counter->fetch_sub(1, std::memory_order_acq_rel); }
  } inflight_guard{&inflight_};
  if (workers_.empty() || n == 1) {
    // Same contract as the parallel path: run everything, report the
    // lowest-indexed failure. Early-exit here would make a batch's side
    // effects depend on the DOP.
    Status first_error = Status::Ok();
    for (std::function<Status()>& t : tasks) {
      CounterAdd(dispatched_);
      Status st = Dispatch(t);
      if (!st.ok() && first_error.ok()) first_error = std::move(st);
    }
    return first_error;
  }
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  batch->statuses.assign(n, Status::Ok());
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(batch);
  }
  queue_cv_.notify_all();
  // Caller participation: claim tasks like any worker, then wait for the
  // stragglers other threads claimed.
  Work(batch.get(), /*is_worker=*/false);
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == n;
    });
  }
  {
    // The batch may still sit at the queue front if workers never woke up;
    // drop it so they do not spin on an exhausted batch.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->get() == batch.get()) {
        queue_.erase(it);
        break;
      }
    }
  }
  for (const Status& s : batch->statuses) {
    XNF_RETURN_IF_ERROR(s);
  }
  return Status::Ok();
}

}  // namespace xnf
