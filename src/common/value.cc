#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace xnf {

const char* TypeName(Type type) {
  switch (type) {
    case Type::kNull:
      return "NULL";
    case Type::kBool:
      return "BOOL";
    case Type::kInt:
      return "INT";
    case Type::kDouble:
      return "DOUBLE";
    case Type::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Type Value::type() const {
  if (is_null()) return Type::kNull;
  if (is_bool()) return Type::kBool;
  if (is_int()) return Type::kInt;
  if (is_double()) return Type::kDouble;
  return Type::kString;
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
  return std::get<double>(rep_);
}

Tribool Value::CompareEq(const Value& other) const {
  if (is_null() || other.is_null()) return Tribool::kUnknown;
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      return AsInt() == other.AsInt() ? Tribool::kTrue : Tribool::kFalse;
    }
    return AsDouble() == other.AsDouble() ? Tribool::kTrue : Tribool::kFalse;
  }
  if (is_string() && other.is_string()) {
    return AsString() == other.AsString() ? Tribool::kTrue : Tribool::kFalse;
  }
  if (is_bool() && other.is_bool()) {
    return AsBool() == other.AsBool() ? Tribool::kTrue : Tribool::kFalse;
  }
  return Tribool::kUnknown;
}

Tribool Value::CompareLt(const Value& other) const {
  if (is_null() || other.is_null()) return Tribool::kUnknown;
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      return AsInt() < other.AsInt() ? Tribool::kTrue : Tribool::kFalse;
    }
    return AsDouble() < other.AsDouble() ? Tribool::kTrue : Tribool::kFalse;
  }
  if (is_string() && other.is_string()) {
    return AsString() < other.AsString() ? Tribool::kTrue : Tribool::kFalse;
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(AsBool()) < static_cast<int>(other.AsBool())
               ? Tribool::kTrue
               : Tribool::kFalse;
  }
  return Tribool::kUnknown;
}

int Value::TotalOrderCompare(const Value& other) const {
  // NULLs first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  // Numeric values compare across int/double.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Otherwise order by type tag, then by value.
  int ta = static_cast<int>(type()), tb = static_cast<int>(other.type());
  if (ta != tb) return ta < tb ? -1 : 1;
  if (is_bool()) {
    int a = AsBool(), b = other.AsBool();
    return a - b;
  }
  // strings
  int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_bool()) return std::hash<bool>{}(AsBool()) ^ 0x1;
  if (is_int()) {
    // Hash ints through double when integral-valued so that 1 and 1.0 land in
    // the same hash-join bucket (they compare equal).
    return std::hash<double>{}(static_cast<double>(AsInt()));
  }
  if (is_double()) return std::hash<double>{}(AsDouble());
  return std::hash<std::string>{}(AsString());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return AsBool() ? "TRUE" : "FALSE";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", AsDouble());
    return buf;
  }
  return "'" + AsString() + "'";
}

Result<Value> Value::CoerceTo(Type target) const {
  if (is_null() || target == Type::kNull || type() == target) return *this;
  if (target == Type::kDouble && is_int()) {
    return Value::Double(static_cast<double>(AsInt()));
  }
  if (target == Type::kInt && is_double()) {
    double d = AsDouble();
    if (std::floor(d) == d) return Value::Int(static_cast<int64_t>(d));
    return Status::InvalidArgument("cannot coerce non-integral " + ToString() +
                                   " to INT");
  }
  return Status::InvalidArgument(std::string("cannot coerce ") +
                                 TypeName(type()) + " value " + ToString() +
                                 " to " + TypeName(target));
}

size_t HashRow(const Row& row) {
  size_t h = 0x2545f4914f6cdd1dULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].TotalOrderCompare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

bool RowsEqual(const Row& a, const Row& b) { return CompareRows(a, b) == 0; }

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace xnf
