#include "common/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <random>

namespace xnf {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

enum class TriggerMode { kNth, kEvery, kProb, kAlways };

struct Site {
  TriggerMode mode = TriggerMode::kAlways;
  uint64_t n = 1;          // kNth / kEvery parameter
  double p = 0.0;          // kProb parameter
  std::mt19937_64 rng;     // kProb: per-site stream, seeded at Enable time
  std::string trigger;     // original trigger text, for Describe()
  uint64_t hits = 0;
  uint64_t fires = 0;
};

// Registry state. A plain mutex is fine: Check() is only reached when at
// least one site is armed, i.e. under test.
std::mutex g_mu;
std::map<std::string, Site>& Sites() {
  static auto* sites = new std::map<std::string, Site>();
  return *sites;
}

thread_local int t_suppress_depth = 0;

bool ParseTrigger(const std::string& trigger, Site* site) {
  site->trigger = trigger;
  if (trigger == "always") {
    site->mode = TriggerMode::kAlways;
    return true;
  }
  size_t open = trigger.find('(');
  if (open == std::string::npos || trigger.back() != ')') return false;
  std::string name = trigger.substr(0, open);
  std::string args = trigger.substr(open + 1, trigger.size() - open - 2);
  if (name == "nth" || name == "every") {
    site->mode = name == "nth" ? TriggerMode::kNth : TriggerMode::kEvery;
    char* end = nullptr;
    unsigned long long v = std::strtoull(args.c_str(), &end, 10);
    if (end == args.c_str() || *end != '\0' || v == 0) return false;
    site->n = v;
    return true;
  }
  if (name == "prob") {
    site->mode = TriggerMode::kProb;
    size_t comma = args.find(',');
    if (comma == std::string::npos) return false;
    std::string p_str = args.substr(0, comma);
    std::string seed_str = args.substr(comma + 1);
    char* end = nullptr;
    double p = std::strtod(p_str.c_str(), &end);
    if (end == p_str.c_str() || *end != '\0' || p < 0.0 || p > 1.0)
      return false;
    unsigned long long seed = std::strtoull(seed_str.c_str(), &end, 10);
    if (end == seed_str.c_str() || *end != '\0') return false;
    site->p = p;
    site->rng.seed(seed);
    return true;
  }
  return false;
}

}  // namespace

std::atomic<int> Failpoints::armed_count_{0};
std::atomic<uint64_t> Failpoints::total_fires_{0};

const std::vector<const char*>& Failpoints::KnownSites() {
  static const std::vector<const char*> kSites = {
      "bufferpool.evict",  //
      "bufferpool.read",   //
      "cocache.fill",      //
      "column.append",     //
      "column.read",       //
      "column.write",      //
      "dml.apply.delete",  //
      "dml.apply.insert",  //
      "dml.apply.update",  //
      "heap.append",       //
      "heap.read",         //
      "heap.write",        //
      "index.erase",       //
      "index.insert",      //
      "threadpool.task",   //
      "xnf.edge.query",    //
      "xnf.node.query",    //
  };
  return kSites;
}

bool Failpoints::IsKnownSite(const std::string& site) {
  const auto& known = KnownSites();
  return std::any_of(known.begin(), known.end(),
                     [&](const char* s) { return site == s; });
}

Status Failpoints::Enable(const std::string& site,
                          const std::string& trigger) {
  if (!IsKnownSite(site)) {
    return Status::InvalidArgument("unknown failpoint site '" + site + "'");
  }
  Site parsed;
  if (!ParseTrigger(trigger, &parsed)) {
    return Status::InvalidArgument(
        "bad failpoint trigger '" + trigger +
        "' (want nth(N), every(N), prob(P,SEED), or always)");
  }
  std::lock_guard<std::mutex> lock(g_mu);
  auto [it, inserted] = Sites().insert_or_assign(site, std::move(parsed));
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

namespace {

// Splits a spec on commas at paren depth zero, so "prob(0.3,7)" stays one
// part while still separating "a=nth(1),b=always".
std::vector<std::string> SplitSpec(const std::string& spec) {
  std::vector<std::string> out;
  std::string part;
  int depth = 0;
  for (char c : spec) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(Trim(part));
      part.clear();
    } else {
      part.push_back(c);
    }
  }
  out.push_back(Trim(part));
  return out;
}

}  // namespace

Status Failpoints::EnableSpec(const std::string& spec) {
  for (const std::string& part : SplitSpec(spec)) {
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad failpoint spec '" + part +
                                     "' (want site=trigger)");
    }
    XNF_RETURN_IF_ERROR(
        Enable(Trim(part.substr(0, eq)), Trim(part.substr(eq + 1))));
  }
  return Status::Ok();
}

bool Failpoints::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (Sites().erase(site) == 0) return false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Failpoints::DisableAll() {
  std::lock_guard<std::mutex> lock(g_mu);
  armed_count_.fetch_sub(static_cast<int>(Sites().size()),
                         std::memory_order_relaxed);
  Sites().clear();
}

Status Failpoints::Check(const char* site) {
  if (t_suppress_depth > 0) return Status::Ok();
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(site);
  if (it == Sites().end()) return Status::Ok();
  Site& s = it->second;
  ++s.hits;
  bool fire = false;
  switch (s.mode) {
    case TriggerMode::kNth:
      fire = s.hits == s.n;
      break;
    case TriggerMode::kEvery:
      fire = s.hits % s.n == 0;
      break;
    case TriggerMode::kProb:
      fire = std::bernoulli_distribution(s.p)(s.rng);
      break;
    case TriggerMode::kAlways:
      fire = true;
      break;
  }
  if (!fire) return Status::Ok();
  ++s.fires;
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  return Status::FaultInjected("failpoint '" + std::string(site) +
                               "' fired on hit " + std::to_string(s.hits));
}

uint64_t Failpoints::hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.hits;
}

uint64_t Failpoints::fires(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.fires;
}

std::vector<std::string> Failpoints::Describe() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string> out;
  out.reserve(Sites().size());
  for (const auto& [name, s] : Sites()) {
    out.push_back(name + " " + s.trigger + " hits=" + std::to_string(s.hits) +
                  " fires=" + std::to_string(s.fires));
  }
  return out;
}

Failpoints::Suppressor::Suppressor() { ++t_suppress_depth; }
Failpoints::Suppressor::~Suppressor() { --t_suppress_depth; }

}  // namespace xnf
