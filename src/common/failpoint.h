#ifndef XNF_COMMON_FAILPOINT_H_
#define XNF_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xnf {

// Deterministic fault injection (see DESIGN.md, "Failure semantics").
//
// A *failpoint* is a named site on an error seam (buffer-pool page read,
// index insert, thread-pool task dispatch, ...). Sites are compiled in
// permanently but cost a single relaxed atomic load + predicted branch when
// no failpoint is armed; tests and the soak harness arm sites with a
// trigger and the site then returns an injected kFaultInjected Status,
// exercising the production error path exactly as a real failure would.
//
// Triggers:
//   nth(N)       fire exactly once, on the Nth hit of the site (N >= 1)
//   every(N)     fire on every Nth hit (N >= 1)
//   prob(P,SEED) fire each hit with probability P, from a per-site PRNG
//                seeded with SEED — a given (P, SEED) pair yields the same
//                fire pattern on every run
//   always       fire on every hit
//
// Spec strings ("site=trigger[,site=trigger...]") come from three places:
// Database::Options::failpoints, the SQLXNF_FAILPOINTS environment
// variable, and the shell's `.failpoint` command. The registry is
// process-global (sites live in library code far from any Database), so
// tests must DisableAll() when done.
//
// Rollback and compensation code runs under a Suppressor: failpoints never
// fire on a thread while one is alive. This encodes the recovery contract —
// undo paths are written to be infallible, so injecting faults into them
// would only test an impossible state.
class Failpoints {
 public:
  // Arms `site` with a trigger ("nth(3)", "every(2)", "prob(0.1,42)",
  // "always"). Unknown sites and malformed triggers are errors.
  static Status Enable(const std::string& site, const std::string& trigger);

  // Arms a comma-separated "site=trigger" list; empty string is a no-op.
  static Status EnableSpec(const std::string& spec);

  // Disarms one site (false if it was not armed) / all sites.
  static bool Disable(const std::string& site);
  static void DisableAll();

  // True iff any site is armed. The disabled-path cost of every failpoint.
  static bool armed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  // Called by XNF_FAILPOINT when armed: counts a hit against `site` and
  // returns the injected error if its trigger fires. Suppressed threads
  // never count hits and never fire.
  static Status Check(const char* site);

  // Total hits counted against `site` since it was armed (0 if not armed).
  static uint64_t hits(const std::string& site);
  // Times `site` actually fired since it was armed.
  static uint64_t fires(const std::string& site);
  // Process-lifetime total of fires across all sites; survives
  // Disable/DisableAll (arming state is reset, the trip history is not).
  // Sampled by the failpoint.trips metrics gauge.
  static uint64_t total_fires() {
    return total_fires_.load(std::memory_order_relaxed);
  }

  // One "site trigger hits=H fires=F" line per armed site, sorted by name.
  static std::vector<std::string> Describe();

  // The catalog of sites wired into the engine, sorted by name.
  static const std::vector<const char*>& KnownSites();
  static bool IsKnownSite(const std::string& site);

  // RAII: failpoints never fire on this thread while an instance is alive.
  // Used by rollback/compensation paths and by test-state verification so
  // probe reads do not perturb trigger schedules.
  class Suppressor {
   public:
    Suppressor();
    ~Suppressor();
    Suppressor(const Suppressor&) = delete;
    Suppressor& operator=(const Suppressor&) = delete;
  };

 private:
  static std::atomic<int> armed_count_;
  static std::atomic<uint64_t> total_fires_;
};

}  // namespace xnf

// Injection site. Expands to one relaxed load + branch when nothing is
// armed; returns the injected Status (convertible to any Result<T>) from
// the enclosing function when the site's trigger fires.
#define XNF_FAILPOINT(site)                                 \
  do {                                                      \
    if (::xnf::Failpoints::armed()) {                       \
      ::xnf::Status fp_status = ::xnf::Failpoints::Check(site); \
      if (!fp_status.ok()) return fp_status;                \
    }                                                       \
  } while (0)

#endif  // XNF_COMMON_FAILPOINT_H_
