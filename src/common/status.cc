#include "common/status.h"

namespace xnf {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kNotUpdatable:
      return "NotUpdatable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFaultInjected:
      return "FaultInjected";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xnf
