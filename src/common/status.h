#ifndef XNF_COMMON_STATUS_H_
#define XNF_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace xnf {

// Error categories used across the engine. Mirrors the RocksDB/Arrow idiom of
// returning rich status objects instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed request, bad value, type mismatch
  kParseError,        // lexer/parser failure (carries position info in message)
  kNotFound,          // unknown table/column/view/relationship/cursor
  kAlreadyExists,     // duplicate table/view/index name, duplicate key
  kNotSupported,      // feature outside the implemented SQL/XNF subset
  kConstraintViolation,  // NOT NULL / primary key / reachability violations
  kNotUpdatable,      // view or relationship cannot be written through
  kInternal,          // invariant breakage; indicates a bug
  kFaultInjected,     // deterministic failpoint fired (tests/soak harness)
};

// Returns a stable human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

// A Status is either OK or an (code, message) pair. Cheap to copy when OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status ConstraintViolation(std::string m) {
    return Status(StatusCode::kConstraintViolation, std::move(m));
  }
  static Status NotUpdatable(std::string m) {
    return Status(StatusCode::kNotUpdatable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status FaultInjected(std::string m) {
    return Status(StatusCode::kFaultInjected, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T> holds either a value or an error Status (an absl::StatusOr
// equivalent kept dependency-free).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT: implicit
  Result(Status status) : status_(std::move(status)) {}   // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xnf

// Propagates a non-OK Status from an expression returning Status.
#define XNF_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::xnf::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Evaluates an expression returning Result<T>; on error propagates the
// Status, otherwise moves the value into `lhs`.
#define XNF_ASSIGN_OR_RETURN(lhs, expr)        \
  auto XNF_CONCAT_(res_, __LINE__) = (expr);   \
  if (!XNF_CONCAT_(res_, __LINE__).ok())       \
    return XNF_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(XNF_CONCAT_(res_, __LINE__)).value()

#define XNF_CONCAT_(a, b) XNF_CONCAT_IMPL_(a, b)
#define XNF_CONCAT_IMPL_(a, b) a##b

#endif  // XNF_COMMON_STATUS_H_
