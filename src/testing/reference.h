#ifndef XNF_TESTING_REFERENCE_H_
#define XNF_TESTING_REFERENCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "xnf/instance.h"

namespace xnf::testing {

// Result of executing one statement through the reference interpreter.
// Mirrors ExecResult closely enough for the differential harness to compare
// outcomes: kind, ok/error (boolean agreement only — messages are free-form),
// rows / affected count / canonical CO rendering.
struct RefOutcome {
  enum class Kind { kNone, kRows, kAffected, kCo };
  Kind kind = Kind::kNone;
  bool ok = true;
  std::string error;  // status rendering when !ok

  std::vector<Row> rows;  // kRows (already ordered per ORDER BY if present)
  // ORDER BY metadata for the harness: output position + ascending flag per
  // ORDER BY key of the statement. full_order means every output position is
  // a key, so engine row sequences are directly comparable (ties are full
  // duplicates, which sorting makes adjacent on both sides).
  std::vector<std::pair<int, bool>> order_keys;
  bool full_order = false;

  int64_t affected = 0;      // kAffected
  std::string co_canonical;  // kCo: order-insensitive rendering

  static RefOutcome Error(const Status& st) {
    RefOutcome o;
    o.ok = false;
    o.error = st.ToString();
    return o;
  }
};

namespace refi {
struct State;
}

// A naive, single-threaded interpreter for the SQL/XNF subset the fuzz
// generator emits. It shares the engine's parsers and Value/Schema
// primitives but evaluates ASTs directly — no QGM, no rewrite, no plans, no
// indexes — so behavioural agreement with the engine is evidence, not shared
// code. reference_sql.cc documents the mirrored SQL semantics,
// reference_xnf.cc the composite-object pipeline.
class ReferenceEngine {
 public:
  ReferenceEngine();
  ~ReferenceEngine();
  ReferenceEngine(const ReferenceEngine&) = delete;
  ReferenceEngine& operator=(const ReferenceEngine&) = delete;

  RefOutcome Execute(const std::string& statement);

  // Canonical order-insensitive rendering of an engine composite object: per
  // node, sorted tuple renderings; per relationship, sorted
  // "parent-tuple|child-tuple|attrs" triples. Node tuples always carry their
  // unique key column in generated queries, so content identifies tuples and
  // two instances are semantically equal iff their renderings match.
  static std::string Canonicalize(const co::CoInstance& co);

  // End-of-script state inspection: base-table names (creation order) and
  // rows for comparing against an engine's `SELECT * FROM t`.
  std::vector<std::string> TableNames() const;
  const std::vector<Row>* TableRows(const std::string& name) const;

 private:
  std::unique_ptr<refi::State> state_;
};

}  // namespace xnf::testing

#endif  // XNF_TESTING_REFERENCE_H_
