// Composite-object pipeline of the reference interpreter.
//
// Mirrors the engine's XNF stack naively: xnf/co_def.cc resolution (view
// splicing, premade import of restricted views), xnf/evaluator.cc
// materialization (simple-node analysis with base-table provenance, edge
// joins as nested loops over candidate tuples), xnf/instance.cc
// reachability, restriction and TAKE application, and the CO-level
// UPDATE/DELETE write-through of api/database.cc + xnf/manipulate.cc. The
// engine runs edge predicates through its full SQL pipeline; the reference
// evaluates them as nested loops with the same SQL dialect semantics, so
// connection sets agree without sharing any executor code.
//
// Ordering note: node tuple order differs between the engines' access paths
// (index lookup vs heap scan) and the reference; every comparison is
// content-based (canonical CO rendering sorts tuples and connections) and
// every write-through effect is order-independent for the generated grammar
// (CO UPDATE assignments are precomputed against the pre-update instance;
// link rows deleted by first-match carry only their key columns).

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"
#include "sql/ast.h"
#include "testing/reference_internal.h"
#include "xnf/ast.h"
#include "xnf/parser.h"

namespace xnf::testing::refi {
namespace {

using sql::Expr;
using K = sql::Expr::Kind;
using co::OutOfItem;
using co::Restriction;
using co::TakeItem;
using co::XnfQuery;

// ------------------------------------------------------ resolved definition

struct RNodeDef {
  std::string name;                        // lowercase
  const sql::SelectStmt* query = nullptr;  // kNodeQuery
  std::string table;                       // kNodeTable (lowercase)
  const RefNode* premade = nullptr;
};

struct RRelDef {
  std::string name;
  std::string parent;
  std::string child;
  std::string parent_corr;
  std::string child_corr;
  std::vector<std::pair<const Expr*, std::string>> attributes;
  std::string using_table;
  std::string using_corr;
  const Expr* predicate = nullptr;
  const RefRel* premade = nullptr;
};

struct RDef {
  std::vector<RNodeDef> nodes;
  std::vector<RRelDef> rels;
  // Keep spliced view bodies and materialized inner views alive for the
  // duration of the evaluation (defs hold raw pointers into them).
  std::vector<std::shared_ptr<const XnfQuery>> owned_queries;
  std::vector<std::shared_ptr<RefCo>> premade_holders;

  int NodeIndex(const std::string& name) const {
    std::string key = ToLower(name);
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].name == key) return static_cast<int>(i);
    }
    return -1;
  }
};

Result<RefCo> EvaluateCoImpl(State* st, const XnfQuery& query,
                             bool allow_materialize);

// Mirrors Resolver::AddItems: bare view references splice structurally when
// the view has no restrictions and a full TAKE; otherwise the view is
// evaluated recursively and imported as premade components. During CREATE
// VIEW validation no materializer exists (allow_materialize=false), so such
// references are rejected — exactly like the engine's view-creation path.
Status AddXnfItems(State* st, const std::vector<OutOfItem>& items, RDef* def,
                   std::vector<std::string>* view_stack,
                   bool allow_materialize) {
  for (const OutOfItem& item : items) {
    switch (item.kind) {
      case OutOfItem::Kind::kViewRef: {
        auto it = st->views.find(ToLower(item.name));
        if (it == st->views.end() || !it->second.is_xnf) {
          return Status::NotFound("XNF view '" + item.name + "' not found");
        }
        for (const std::string& v : *view_stack) {
          if (v == item.name) {
            return Status::InvalidArgument(
                "cyclic XNF view definition involving '" + item.name + "'");
          }
        }
        std::shared_ptr<const XnfQuery> sub = it->second.xnf;
        if (sub == nullptr) {
          XNF_ASSIGN_OR_RETURN(XnfQuery parsed,
                               co::Parser::Parse(it->second.definition));
          sub = std::make_shared<const XnfQuery>(std::move(parsed));
        }
        def->owned_queries.push_back(sub);
        if (sub->action != XnfQuery::Action::kTake) {
          return Status::InvalidArgument("XNF view '" + item.name +
                                         "' must be a TAKE query");
        }
        if (sub->restrictions.empty() && sub->take_all) {
          view_stack->push_back(item.name);
          XNF_RETURN_IF_ERROR(AddXnfItems(st, sub->items, def, view_stack,
                                          allow_materialize));
          view_stack->pop_back();
          break;
        }
        if (!allow_materialize) {
          return Status::NotSupported(
              "XNF view '" + item.name +
              "' with restrictions or partial TAKE cannot be composed "
              "structurally; no materializer available");
        }
        // The engine's materializer evaluates the view with a fresh
        // resolver; the stack guard only covers this resolution.
        view_stack->push_back(item.name);
        Result<RefCo> materialized =
            EvaluateCoImpl(st, *sub, /*allow_materialize=*/true);
        view_stack->pop_back();
        if (!materialized.ok()) return materialized.status();
        auto holder = std::make_shared<RefCo>(std::move(*materialized));
        def->premade_holders.push_back(holder);
        for (const RefNode& n : holder->nodes) {
          RNodeDef node;
          node.name = n.name;
          node.premade = &n;
          def->nodes.push_back(std::move(node));
        }
        for (const RefRel& r : holder->rels) {
          RRelDef rel;
          rel.name = r.name;
          rel.parent = holder->nodes[r.parent_node].name;
          rel.child = holder->nodes[r.child_node].name;
          rel.parent_corr = rel.parent;
          rel.child_corr = rel.child;
          rel.premade = &r;
          def->rels.push_back(std::move(rel));
        }
        break;
      }
      case OutOfItem::Kind::kNodeQuery: {
        RNodeDef node;
        node.name = ToLower(item.name);
        node.query = item.query.get();
        def->nodes.push_back(std::move(node));
        break;
      }
      case OutOfItem::Kind::kNodeTable: {
        RNodeDef node;
        node.name = ToLower(item.name);
        node.table = ToLower(item.table);
        def->nodes.push_back(std::move(node));
        break;
      }
      case OutOfItem::Kind::kRelate: {
        const co::RelateSpec& spec = *item.relate;
        RRelDef rel;
        rel.name = ToLower(item.name);
        rel.parent = ToLower(spec.parent);
        rel.child = ToLower(spec.child);
        rel.parent_corr =
            ToLower(spec.parent_corr.empty() ? spec.parent : spec.parent_corr);
        rel.child_corr =
            ToLower(spec.child_corr.empty() ? spec.child : spec.child_corr);
        for (const co::RelAttribute& a : spec.attributes) {
          rel.attributes.emplace_back(a.expr.get(), a.name);
        }
        rel.using_table = ToLower(spec.using_table);
        rel.using_corr = ToLower(
            spec.using_corr.empty() ? spec.using_table : spec.using_corr);
        rel.predicate = spec.predicate.get();
        def->rels.push_back(std::move(rel));
        break;
      }
    }
  }
  return Status::Ok();
}

Status ValidateDef(const RDef& def) {
  std::set<std::string> names;
  for (const RNodeDef& n : def.nodes) {
    if (!names.insert(n.name).second) {
      return Status::InvalidArgument("duplicate component name '" + n.name +
                                     "'");
    }
  }
  for (const RRelDef& r : def.rels) {
    if (!names.insert(r.name).second) {
      return Status::InvalidArgument("duplicate component name '" + r.name +
                                     "'");
    }
  }
  for (const RRelDef& r : def.rels) {
    if (def.NodeIndex(r.parent) < 0) {
      return Status::InvalidArgument("relationship '" + r.name +
                                     "' references unknown parent table '" +
                                     r.parent + "'");
    }
    if (def.NodeIndex(r.child) < 0) {
      return Status::InvalidArgument("relationship '" + r.name +
                                     "' references unknown child table '" +
                                     r.child + "'");
    }
    if (r.predicate == nullptr && r.premade == nullptr) {
      return Status::InvalidArgument("relationship '" + r.name +
                                     "' has no predicate");
    }
  }
  return Status::Ok();
}

Result<RDef> ResolveXnf(State* st, const XnfQuery& query,
                        bool allow_materialize) {
  RDef def;
  std::vector<std::string> stack;
  XNF_RETURN_IF_ERROR(
      AddXnfItems(st, query.items, &def, &stack, allow_materialize));
  XNF_RETURN_IF_ERROR(ValidateDef(def));
  return def;
}

// --------------------------------------------------- simple-node analysis

bool ContainsPath(const Expr& e) {
  if (e.kind == K::kPath || e.kind == K::kExistsPath) return true;
  for (const sql::ExprPtr& a : e.args) {
    if (a && ContainsPath(*a)) return true;
  }
  return false;
}

bool ContainsSubqueryOrAgg(const Expr& e) {
  if (e.kind == K::kInSubquery || e.kind == K::kExistsSubquery ||
      e.kind == K::kScalarSubquery) {
    return true;
  }
  if (e.kind == K::kFuncCall) {
    std::string n = ToLower(e.column);
    if (n == "count" || n == "sum" || n == "avg" || n == "min" ||
        n == "max") {
      return true;
    }
  }
  for (const sql::ExprPtr& a : e.args) {
    if (a && ContainsSubqueryOrAgg(*a)) return true;
  }
  return false;
}

struct SimpleInfo {
  bool simple = false;
  std::string base_table;
  std::string alias;
  const Expr* predicate = nullptr;
  bool select_star = false;
  std::vector<std::string> columns;
  std::vector<std::string> out_names;
};

// Mirrors AnalyzeSimpleNode: a bare table, or a projection/selection of one
// base table with a plain WHERE (no subqueries, aggregates, or paths).
SimpleInfo AnalyzeSimple(State* st, const RNodeDef& def) {
  SimpleInfo info;
  if (!def.table.empty()) {
    if (st->tables.count(def.table) == 0) return info;
    info.simple = true;
    info.base_table = def.table;
    info.alias = def.table;
    info.select_star = true;
    return info;
  }
  const sql::SelectStmt& q = *def.query;
  if (q.distinct || !q.group_by.empty() || q.having != nullptr ||
      !q.order_by.empty() || q.limit.has_value() || q.union_next != nullptr ||
      q.from.size() != 1) {
    return info;
  }
  const sql::TableRef& from = *q.from[0];
  if (from.kind != sql::TableRef::Kind::kNamed) return info;
  if (st->tables.count(ToLower(from.name)) == 0) return info;
  if (q.where != nullptr &&
      (ContainsSubqueryOrAgg(*q.where) || ContainsPath(*q.where))) {
    return info;
  }
  for (const sql::SelectItem& item : q.items) {
    if (item.star) {
      if (!item.star_table.empty()) return info;
      info.select_star = true;
      continue;
    }
    if (item.expr->kind != K::kColumnRef) return info;
    info.columns.push_back(ToLower(item.expr->column));
    info.out_names.push_back(
        item.alias.empty() ? ToLower(item.expr->column) : ToLower(item.alias));
  }
  if (info.select_star && !info.columns.empty()) return info;
  info.simple = true;
  info.base_table = ToLower(from.name);
  info.alias = from.alias.empty() ? ToLower(from.name) : ToLower(from.alias);
  info.predicate = q.where.get();
  return info;
}

// --------------------------------------------------------- materialization

Result<RefNode> MaterializeRefNode(State* st, const RNodeDef& def) {
  if (def.premade != nullptr) return *def.premade;

  RefNode node;
  node.name = def.name;
  SimpleInfo simple = AnalyzeSimple(st, def);
  if (simple.simple) {
    RefTable& table = st->tables.at(simple.base_table);
    std::vector<Entry> entries;
    entries.push_back(
        Entry{simple.alias, table.schema.WithQualifier(simple.alias), 0});
    if (simple.predicate != nullptr) {
      Scope check_scope;
      check_scope.entries = &entries;
      CheckOpts opts;
      opts.allow_subqueries = false;
      XNF_RETURN_IF_ERROR(
          CheckExpr(st, *simple.predicate, check_scope, opts).status());
    }
    if (simple.select_star) {
      for (size_t i = 0; i < table.schema.size(); ++i) {
        Column c = table.schema.column(i);
        c.table = def.name;
        node.schema.AddColumn(std::move(c));
        node.base_column_map.push_back(static_cast<int>(i));
      }
    } else {
      for (size_t i = 0; i < simple.columns.size(); ++i) {
        XNF_ASSIGN_OR_RETURN(size_t b,
                             table.schema.Resolve("", simple.columns[i]));
        Column c = table.schema.column(b);
        c.name = simple.out_names[i];
        c.table = def.name;
        node.schema.AddColumn(std::move(c));
        node.base_column_map.push_back(static_cast<int>(b));
      }
    }
    node.base_table = simple.base_table;
    Scope scope;
    scope.entries = &entries;
    for (size_t ri = 0; ri < table.rows.size(); ++ri) {
      const Row& row = table.rows[ri];
      if (simple.predicate != nullptr) {
        scope.row = &row;
        XNF_ASSIGN_OR_RETURN(bool keep, EvalPred(st, *simple.predicate, scope,
                                                 Dialect::kSql, nullptr));
        if (!keep) continue;
      }
      Row out;
      out.reserve(node.base_column_map.size());
      for (int b : node.base_column_map) out.push_back(row[b]);
      node.tuples.push_back(std::move(out));
      node.rids.push_back(table.rids[ri]);
    }
    return node;
  }

  if (def.query == nullptr) {
    return Status::NotFound("table '" + def.table + "' not found for node '" +
                            def.name + "'");
  }
  XNF_ASSIGN_OR_RETURN(SelectOut out, EvalSelect(st, *def.query, nullptr));
  for (size_t i = 0; i < out.names.size(); ++i) {
    Column c(out.names[i], out.types[i]);
    c.table = def.name;
    node.schema.AddColumn(std::move(c));
  }
  node.tuples = std::move(out.rows);
  return node;
}

// Mirrors the CSE temp-narrowing check: every node column a relationship
// predicate or attribute references (qualified by the partner correlation)
// must exist in the candidate schema. With CSE off the engine hits the same
// columns when building the inline edge query; either way it errors.
Status CheckRelColumns(const RDef& def, const RefCo& inst) {
  for (const RRelDef& rel : def.rels) {
    if (rel.premade != nullptr) continue;
    auto check_against = [&](const std::string& qual, const Expr& e,
                             auto&& self) -> Status {
      if (e.kind == K::kColumnRef && ToLower(e.table) == qual) {
        const std::string* node_name = nullptr;
        if (qual == rel.parent_corr) {
          node_name = &rel.parent;
        } else if (qual == rel.child_corr) {
          node_name = &rel.child;
        }
        if (node_name != nullptr) {
          int n = inst.NodeIndex(*node_name);
          if (n >= 0 && !inst.nodes[n].schema.Find(ToLower(e.column))) {
            return Status::NotFound("column '" + ToLower(e.column) +
                                    "' not found in component table '" +
                                    *node_name + "'");
          }
        }
      }
      for (const sql::ExprPtr& a : e.args) {
        if (a != nullptr) {
          XNF_RETURN_IF_ERROR(self(qual, *a, self));
        }
      }
      return Status::Ok();
    };
    auto walk = [&](const Expr& root) -> Status {
      XNF_RETURN_IF_ERROR(
          check_against(rel.parent_corr, root, check_against));
      return check_against(rel.child_corr, root, check_against);
    };
    XNF_RETURN_IF_ERROR(walk(*rel.predicate));
    for (const auto& [expr, name] : rel.attributes) {
      XNF_RETURN_IF_ERROR(walk(*expr));
    }
  }
  return Status::Ok();
}

// Mirrors AnalyzeRelWrite: classify the predicate as a foreign-key equality
// (parent.a = child.b) or a two-conjunct link-table join.
void AnalyzeWrite(State* st, const RRelDef& def, const RefCo& inst,
                  RefRel* rel) {
  const RefNode& parent = inst.nodes[rel->parent_node];
  const RefNode& child = inst.nodes[rel->child_node];

  std::vector<const Expr*> conjuncts;
  std::function<void(const Expr*)> split = [&](const Expr* e) {
    if (e->kind == K::kBinary && e->bin_op == sql::BinOp::kAnd) {
      split(e->args[0].get());
      split(e->args[1].get());
      return;
    }
    conjuncts.push_back(e);
  };
  split(def.predicate);

  auto classify = [&](const Expr* e) -> int {
    if (e->kind != K::kColumnRef) return -1;
    std::string q = ToLower(e->table);
    if (q == def.parent_corr) return 0;
    if (q == def.child_corr) return 1;
    if (!def.using_table.empty() && q == def.using_corr) return 2;
    return -1;
  };

  if (def.using_table.empty()) {
    if (conjuncts.size() != 1) return;
    const Expr* e = conjuncts[0];
    if (e->kind != K::kBinary || e->bin_op != sql::BinOp::kEq) return;
    int l = classify(e->args[0].get());
    int r = classify(e->args[1].get());
    const Expr* pcol = nullptr;
    const Expr* ccol = nullptr;
    if (l == 0 && r == 1) {
      pcol = e->args[0].get();
      ccol = e->args[1].get();
    } else if (l == 1 && r == 0) {
      pcol = e->args[1].get();
      ccol = e->args[0].get();
    } else {
      return;
    }
    auto pi = parent.schema.Find(ToLower(pcol->column));
    auto ci = child.schema.Find(ToLower(ccol->column));
    if (!pi.has_value() || !ci.has_value()) return;
    rel->write_kind = co::CoRelInstance::WriteKind::kForeignKey;
    rel->fk_parent_column = static_cast<int>(*pi);
    rel->fk_child_column = static_cast<int>(*ci);
    return;
  }

  auto link_it = st->tables.find(def.using_table);
  if (link_it == st->tables.end() || conjuncts.size() != 2) return;
  const Schema& link_schema = link_it->second.schema;
  int parent_key = -1, child_key = -1, link_p = -1, link_c = -1;
  for (const Expr* e : conjuncts) {
    if (e->kind != K::kBinary || e->bin_op != sql::BinOp::kEq) return;
    int l = classify(e->args[0].get());
    int r = classify(e->args[1].get());
    const Expr* node_col = nullptr;
    const Expr* link_col = nullptr;
    int node_side = -1;
    if ((l == 0 || l == 1) && r == 2) {
      node_col = e->args[0].get();
      link_col = e->args[1].get();
      node_side = l;
    } else if ((r == 0 || r == 1) && l == 2) {
      node_col = e->args[1].get();
      link_col = e->args[0].get();
      node_side = r;
    } else {
      return;
    }
    auto li = link_schema.Find(ToLower(link_col->column));
    if (!li.has_value()) return;
    if (node_side == 0) {
      auto pi = parent.schema.Find(ToLower(node_col->column));
      if (!pi.has_value()) return;
      parent_key = static_cast<int>(*pi);
      link_p = static_cast<int>(*li);
    } else {
      auto ci = child.schema.Find(ToLower(node_col->column));
      if (!ci.has_value()) return;
      child_key = static_cast<int>(*ci);
      link_c = static_cast<int>(*li);
    }
  }
  if (parent_key < 0 || child_key < 0) return;
  rel->write_kind = co::CoRelInstance::WriteKind::kLinkTable;
  rel->link_table = def.using_table;
  rel->parent_key_column = parent_key;
  rel->child_key_column = child_key;
  rel->link_parent_column = link_p;
  rel->link_child_column = link_c;
}

Result<RefRel> MaterializeRefRel(State* st, const RRelDef& def,
                                 const RefCo& inst) {
  RefRel rel;
  rel.name = def.name;
  rel.parent_node = inst.NodeIndex(def.parent);
  rel.child_node = inst.NodeIndex(def.child);
  if (rel.parent_node < 0 || rel.child_node < 0) {
    return Status::Internal("relationship partners missing");
  }
  if (def.premade != nullptr) {
    rel = *def.premade;
    rel.parent_node = inst.NodeIndex(def.parent);
    rel.child_node = inst.NodeIndex(def.child);
    return rel;
  }
  const RefNode& parent = inst.nodes[rel.parent_node];
  const RefNode& child = inst.nodes[rel.child_node];
  for (const auto& [expr, name] : def.attributes) rel.attr_names.push_back(name);

  std::vector<Entry> entries;
  entries.push_back(Entry{def.parent_corr, parent.schema, 0});
  entries.push_back(Entry{def.child_corr, child.schema, parent.schema.size()});
  const std::vector<Row>* link_rows = nullptr;
  if (!def.using_table.empty()) {
    auto it = st->tables.find(def.using_table);
    if (it == st->tables.end()) {
      return Status::NotFound("table or view '" + def.using_table +
                              "' not found");
    }
    entries.push_back(Entry{def.using_corr, it->second.schema,
                            parent.schema.size() + child.schema.size()});
    link_rows = &it->second.rows;
  }
  Scope scope;
  scope.entries = &entries;
  CheckOpts opts;
  XNF_RETURN_IF_ERROR(CheckExpr(st, *def.predicate, scope, opts).status());
  for (const auto& [expr, name] : def.attributes) {
    XNF_RETURN_IF_ERROR(CheckExpr(st, *expr, scope, opts).status());
  }

  static const std::vector<Row> kNoLink = {Row{}};
  const std::vector<Row>& link = link_rows != nullptr ? *link_rows : kNoLink;
  for (size_t p = 0; p < parent.tuples.size(); ++p) {
    for (size_t c = 0; c < child.tuples.size(); ++c) {
      for (const Row& l : link) {
        Row combined = parent.tuples[p];
        combined.insert(combined.end(), child.tuples[c].begin(),
                        child.tuples[c].end());
        combined.insert(combined.end(), l.begin(), l.end());
        scope.row = &combined;
        XNF_ASSIGN_OR_RETURN(bool keep, EvalPred(st, *def.predicate, scope,
                                                 Dialect::kSql, nullptr));
        if (!keep) continue;
        RefConn conn;
        conn.parent = static_cast<int>(p);
        conn.child = static_cast<int>(c);
        for (const auto& [expr, name] : def.attributes) {
          XNF_ASSIGN_OR_RETURN(
              Value v, Eval(st, *expr, scope, Dialect::kSql, nullptr));
          conn.attrs.push_back(std::move(v));
        }
        rel.conns.push_back(std::move(conn));
      }
    }
  }
  AnalyzeWrite(st, def, inst, &rel);
  return rel;
}

// ------------------------------------------------ pruning and reachability

void PruneRefCo(RefCo* co, const std::vector<std::vector<char>>& keep) {
  std::vector<std::vector<int>> remap(co->nodes.size());
  for (size_t n = 0; n < co->nodes.size(); ++n) {
    RefNode& node = co->nodes[n];
    remap[n].assign(node.tuples.size(), -1);
    std::vector<Row> kept_tuples;
    std::vector<int64_t> kept_rids;
    for (size_t t = 0; t < node.tuples.size(); ++t) {
      if (!keep[n][t]) continue;
      remap[n][t] = static_cast<int>(kept_tuples.size());
      kept_tuples.push_back(std::move(node.tuples[t]));
      if (!node.rids.empty()) kept_rids.push_back(node.rids[t]);
    }
    node.tuples = std::move(kept_tuples);
    node.rids = std::move(kept_rids);
  }
  for (RefRel& rel : co->rels) {
    std::vector<RefConn> kept;
    for (RefConn& c : rel.conns) {
      int p = remap[rel.parent_node][c.parent];
      int ch = remap[rel.child_node][c.child];
      if (p < 0 || ch < 0) continue;
      kept.push_back(RefConn{p, ch, std::move(c.attrs)});
    }
    rel.conns = std::move(kept);
  }
}

void ReachabilityRefCo(RefCo* co) {
  size_t n_nodes = co->nodes.size();
  std::vector<char> has_incoming(n_nodes, 0);
  for (const RefRel& rel : co->rels) {
    if (rel.child_node >= 0) has_incoming[rel.child_node] = 1;
  }
  std::vector<std::vector<char>> marked(n_nodes);
  for (size_t n = 0; n < n_nodes; ++n) {
    marked[n].assign(co->nodes[n].tuples.size(), 0);
  }
  std::deque<std::pair<int, int>> frontier;
  for (size_t n = 0; n < n_nodes; ++n) {
    if (has_incoming[n]) continue;
    for (size_t t = 0; t < co->nodes[n].tuples.size(); ++t) {
      marked[n][t] = 1;
      frontier.emplace_back(static_cast<int>(n), static_cast<int>(t));
    }
  }
  while (!frontier.empty()) {
    auto [n, t] = frontier.front();
    frontier.pop_front();
    for (const RefRel& rel : co->rels) {
      if (rel.parent_node != n) continue;
      for (const RefConn& c : rel.conns) {
        if (c.parent != t) continue;
        if (!marked[rel.child_node][c.child]) {
          marked[rel.child_node][c.child] = 1;
          frontier.emplace_back(rel.child_node, c.child);
        }
      }
    }
  }
  PruneRefCo(co, marked);
}

// -------------------------------------------------- restrictions and TAKE

Status ApplyRefRestrictions(State* st,
                            const std::vector<Restriction>& restrictions,
                            RefCo* co) {
  if (restrictions.empty()) return Status::Ok();
  std::vector<std::vector<char>> keep(co->nodes.size());
  for (size_t n = 0; n < co->nodes.size(); ++n) {
    keep[n].assign(co->nodes[n].tuples.size(), 1);
  }
  std::vector<std::vector<char>> keep_conn(co->rels.size());
  for (size_t r = 0; r < co->rels.size(); ++r) {
    keep_conn[r].assign(co->rels[r].conns.size(), 1);
  }

  for (const Restriction& restriction : restrictions) {
    if (restriction.kind == Restriction::Kind::kNode) {
      int n = co->NodeIndex(restriction.target);
      if (n < 0) {
        return Status::NotFound("restricted component table '" +
                                restriction.target + "' not found");
      }
      const RefNode& node = co->nodes[n];
      std::string corr = ToLower(
          restriction.corr.empty() ? node.name : restriction.corr);
      std::vector<Entry> entries;
      entries.push_back(Entry{corr, node.schema, 0});
      Scope scope;
      scope.entries = &entries;
      for (size_t t = 0; t < node.tuples.size(); ++t) {
        scope.row = &node.tuples[t];
        XNF_ASSIGN_OR_RETURN(
            bool ok, EvalPred(st, *restriction.predicate, scope,
                              Dialect::kRestricted, nullptr));
        if (!ok) keep[n][t] = 0;
      }
    } else {
      int r = co->RelIndex(restriction.target);
      if (r < 0) {
        return Status::NotFound("restricted relationship '" +
                                restriction.target + "' not found");
      }
      const RefRel& rel = co->rels[r];
      const RefNode& parent = co->nodes[rel.parent_node];
      const RefNode& child = co->nodes[rel.child_node];
      std::vector<Entry> entries;
      entries.push_back(
          Entry{ToLower(restriction.parent_corr), parent.schema, 0});
      entries.push_back(Entry{ToLower(restriction.child_corr), child.schema,
                              parent.schema.size()});
      Scope scope;
      scope.entries = &entries;
      for (size_t c = 0; c < rel.conns.size(); ++c) {
        const RefConn& conn = rel.conns[c];
        Row combined = parent.tuples[conn.parent];
        combined.insert(combined.end(), child.tuples[conn.child].begin(),
                        child.tuples[conn.child].end());
        scope.row = &combined;
        XNF_ASSIGN_OR_RETURN(
            bool ok, EvalPred(st, *restriction.predicate, scope,
                              Dialect::kRestricted, nullptr));
        if (!ok) keep_conn[r][c] = 0;
      }
    }
  }

  for (size_t r = 0; r < co->rels.size(); ++r) {
    RefRel& rel = co->rels[r];
    std::vector<RefConn> kept;
    for (size_t c = 0; c < rel.conns.size(); ++c) {
      if (keep_conn[r][c]) kept.push_back(std::move(rel.conns[c]));
    }
    rel.conns = std::move(kept);
  }
  PruneRefCo(co, keep);
  ReachabilityRefCo(co);
  return Status::Ok();
}

Status ApplyRefTake(const XnfQuery& query, RefCo* co) {
  if (query.take_all) return Status::Ok();

  std::vector<char> keep_node(co->nodes.size(), 0);
  std::vector<char> keep_rel(co->rels.size(), 0);
  std::vector<const TakeItem*> node_items(co->nodes.size(), nullptr);
  for (const TakeItem& item : query.take) {
    int n = co->NodeIndex(item.name);
    if (n >= 0) {
      keep_node[n] = 1;
      node_items[n] = &item;
      continue;
    }
    int r = co->RelIndex(item.name);
    if (r >= 0) {
      if (item.has_column_list && !item.star_columns) {
        return Status::InvalidArgument("column projection on relationship '" +
                                       item.name + "' is not meaningful");
      }
      keep_rel[r] = 1;
      continue;
    }
    return Status::NotFound("TAKE item '" + item.name +
                            "' is not a component of this CO");
  }

  for (size_t r = 0; r < co->rels.size(); ++r) {
    if (!keep_rel[r]) continue;
    if (!keep_node[co->rels[r].parent_node] ||
        !keep_node[co->rels[r].child_node]) {
      keep_rel[r] = 0;
    }
  }

  RefCo projected;
  std::vector<int> node_remap(co->nodes.size(), -1);
  std::vector<std::vector<int>> column_remap(co->nodes.size());
  for (size_t n = 0; n < co->nodes.size(); ++n) {
    if (!keep_node[n]) continue;
    node_remap[n] = static_cast<int>(projected.nodes.size());
    RefNode node = std::move(co->nodes[n]);
    const TakeItem* item = node_items[n];
    if (item != nullptr && item->has_column_list && !item->star_columns) {
      std::vector<size_t> cols;
      Schema schema;
      std::vector<int> base_map;
      column_remap[n].assign(node.schema.size(), -1);
      for (const std::string& c : item->columns) {
        XNF_ASSIGN_OR_RETURN(size_t i, node.schema.Resolve("", c));
        column_remap[n][i] = static_cast<int>(cols.size());
        cols.push_back(i);
        schema.AddColumn(node.schema.column(i));
        if (!node.base_column_map.empty()) {
          base_map.push_back(node.base_column_map[i]);
        }
      }
      for (Row& row : node.tuples) {
        Row out;
        out.reserve(cols.size());
        for (size_t i : cols) out.push_back(std::move(row[i]));
        row = std::move(out);
      }
      node.schema = schema;
      node.base_column_map = base_map;
    }
    projected.nodes.push_back(std::move(node));
  }
  for (size_t r = 0; r < co->rels.size(); ++r) {
    if (!keep_rel[r]) continue;
    RefRel rel = std::move(co->rels[r]);
    int old_parent = rel.parent_node;
    int old_child = rel.child_node;
    rel.parent_node = node_remap[old_parent];
    rel.child_node = node_remap[old_child];
    auto remap_col = [&](int old_node, int col) {
      if (col < 0 || column_remap[old_node].empty()) return col;
      return column_remap[old_node][col];
    };
    switch (rel.write_kind) {
      case co::CoRelInstance::WriteKind::kForeignKey:
        rel.fk_parent_column = remap_col(old_parent, rel.fk_parent_column);
        rel.fk_child_column = remap_col(old_child, rel.fk_child_column);
        if (rel.fk_parent_column < 0 || rel.fk_child_column < 0) {
          rel.write_kind = co::CoRelInstance::WriteKind::kNone;
        }
        break;
      case co::CoRelInstance::WriteKind::kLinkTable:
        rel.parent_key_column = remap_col(old_parent, rel.parent_key_column);
        rel.child_key_column = remap_col(old_child, rel.child_key_column);
        if (rel.parent_key_column < 0 || rel.child_key_column < 0) {
          rel.write_kind = co::CoRelInstance::WriteKind::kNone;
        }
        break;
      case co::CoRelInstance::WriteKind::kNone:
        break;
    }
    projected.rels.push_back(std::move(rel));
  }
  *co = std::move(projected);
  ReachabilityRefCo(co);
  return Status::Ok();
}

Result<RefCo> EvaluateCoImpl(State* st, const XnfQuery& query,
                             bool allow_materialize) {
  XNF_ASSIGN_OR_RETURN(RDef def, ResolveXnf(st, query, allow_materialize));
  RefCo inst;
  for (const RNodeDef& node_def : def.nodes) {
    XNF_ASSIGN_OR_RETURN(RefNode node, MaterializeRefNode(st, node_def));
    inst.nodes.push_back(std::move(node));
  }
  XNF_RETURN_IF_ERROR(CheckRelColumns(def, inst));
  for (const RRelDef& rel_def : def.rels) {
    XNF_ASSIGN_OR_RETURN(RefRel rel, MaterializeRefRel(st, rel_def, inst));
    inst.rels.push_back(std::move(rel));
  }
  ReachabilityRefCo(&inst);
  XNF_RETURN_IF_ERROR(ApplyRefRestrictions(st, query.restrictions, &inst));
  XNF_RETURN_IF_ERROR(ApplyRefTake(query, &inst));
  return inst;
}

// ------------------------------------------------------- CO manipulation

// Mirrors Manipulator::IsRelationshipColumn over the materialized instance.
bool IsRelColumn(const RefCo& co, int node, int column) {
  for (const RefRel& rel : co.rels) {
    switch (rel.write_kind) {
      case co::CoRelInstance::WriteKind::kForeignKey:
        if (rel.parent_node == node && rel.fk_parent_column == column) {
          return true;
        }
        if (rel.child_node == node && rel.fk_child_column == column) {
          return true;
        }
        break;
      case co::CoRelInstance::WriteKind::kLinkTable:
        if (rel.parent_node == node && rel.parent_key_column == column) {
          return true;
        }
        if (rel.child_node == node && rel.child_key_column == column) {
          return true;
        }
        break;
      case co::CoRelInstance::WriteKind::kNone:
        break;
    }
  }
  return false;
}

Result<RefOutcome> ExecCoUpdate(State* st, const XnfQuery& query,
                                const RefCo& co) {
  int n = co.NodeIndex(query.update_target);
  if (n < 0) {
    return Status::NotFound("component table '" + query.update_target +
                            "' not found in this CO");
  }
  const RefNode& node = co.nodes[n];

  // Assignment expressions are evaluated against the pre-update instance
  // (restricted dialect, the correlation being the component name).
  std::vector<Entry> entries;
  entries.push_back(Entry{node.name, node.schema, 0});
  Scope scope;
  scope.entries = &entries;
  std::vector<std::vector<Value>> planned(node.tuples.size());
  for (size_t t = 0; t < node.tuples.size(); ++t) {
    scope.row = &node.tuples[t];
    for (const auto& [col, expr] : query.assignments) {
      XNF_ASSIGN_OR_RETURN(
          Value v, Eval(st, *expr, scope, Dialect::kRestricted, nullptr));
      planned[t].push_back(std::move(v));
    }
  }

  // Write-through, statement-atomically: stage the base table and commit
  // only if every per-tuple, per-assignment application succeeds. Per-call
  // checks mirror Manipulator::UpdateColumn, so a bad assignment over an
  // empty component succeeds with zero tuples affected — exactly like the
  // engine, whose manipulator never runs.
  RefTable* table = nullptr;
  std::vector<Row> staged;
  if (!node.base_table.empty()) {
    table = &st->tables.at(node.base_table);
    staged = table->rows;
  }
  for (size_t t = 0; t < node.tuples.size(); ++t) {
    for (size_t a = 0; a < query.assignments.size(); ++a) {
      const std::string& col_name = query.assignments[a].first;
      XNF_ASSIGN_OR_RETURN(size_t col,
                           node.schema.Resolve("", ToLower(col_name)));
      if (IsRelColumn(co, n, static_cast<int>(col))) {
        return Status::NotUpdatable(
            "column '" + col_name +
            "' defines a relationship; use connect/disconnect instead "
            "(§3.7)");
      }
      XNF_ASSIGN_OR_RETURN(
          Value coerced, planned[t][a].CoerceTo(node.schema.column(col).type));
      if (!node.updatable() || node.rids.empty()) {
        return Status::NotUpdatable("component table '" + node.name +
                                    "' is not updatable (no simple "
                                    "base-table derivation)");
      }
      auto rid_it = std::find(table->rids.begin(), table->rids.end(),
                              node.rids[t]);
      if (rid_it == table->rids.end()) {
        return Status::Internal("stale tuple provenance");
      }
      size_t ri = static_cast<size_t>(rid_it - table->rids.begin());
      Row new_row = staged[ri];
      new_row[node.base_column_map[col]] = std::move(coerced);
      XNF_RETURN_IF_ERROR(table->schema.CheckAndCoerceRow(&new_row));
      staged[ri] = std::move(new_row);
    }
  }
  if (table != nullptr) table->rows = std::move(staged);
  RefOutcome out;
  out.kind = RefOutcome::Kind::kAffected;
  out.affected = static_cast<int64_t>(node.tuples.size());
  return out;
}

Result<RefOutcome> ExecCoDelete(State* st, const RefCo& co) {
  for (const RefNode& node : co.nodes) {
    if (!node.tuples.empty() && !node.updatable()) {
      return Status::NotUpdatable("component table '" + node.name +
                                  "' is not updatable; CO DELETE rejected");
    }
  }
  // Stage every touched table; commit all-or-nothing.
  std::map<std::string, std::pair<std::vector<Row>, std::vector<int64_t>>>
      staged;
  auto stage = [&](const std::string& key) {
    auto it = staged.find(key);
    if (it == staged.end()) {
      RefTable& t = st->tables.at(key);
      it = staged.emplace(key, std::make_pair(t.rows, t.rids)).first;
    }
    return it;
  };

  int64_t affected = 0;
  // Link-table connections first: each deletes the first link row (in row
  // order) whose key pair matches the connection's endpoints.
  for (const RefRel& rel : co.rels) {
    if (rel.write_kind != co::CoRelInstance::WriteKind::kLinkTable) continue;
    if (st->tables.count(rel.link_table) == 0) continue;
    auto it = stage(rel.link_table);
    auto& [rows, rids] = it->second;
    const RefNode& parent = co.nodes[rel.parent_node];
    const RefNode& child = co.nodes[rel.child_node];
    for (const RefConn& c : rel.conns) {
      const Value& pkey = parent.tuples[c.parent][rel.parent_key_column];
      const Value& ckey = child.tuples[c.child][rel.child_key_column];
      for (size_t ri = 0; ri < rows.size(); ++ri) {
        if (rows[ri][rel.link_parent_column].CompareEq(pkey) ==
                Tribool::kTrue &&
            rows[ri][rel.link_child_column].CompareEq(ckey) ==
                Tribool::kTrue) {
          rows.erase(rows.begin() + ri);
          rids.erase(rids.begin() + ri);
          ++affected;
          break;
        }
      }
    }
  }

  for (const RefNode& node : co.nodes) {
    if (node.tuples.empty()) continue;
    if (st->tables.count(node.base_table) == 0) {
      return Status::NotFound("base table '" + node.base_table +
                              "' not found");
    }
    auto it = stage(node.base_table);
    auto& [rows, rids] = it->second;
    for (int64_t rid : node.rids) {
      auto rid_it = std::find(rids.begin(), rids.end(), rid);
      if (rid_it == rids.end()) {
        return Status::Internal("stale tuple provenance");
      }
      size_t ri = static_cast<size_t>(rid_it - rids.begin());
      rows.erase(rows.begin() + ri);
      rids.erase(rids.begin() + ri);
      ++affected;
    }
  }

  for (auto& [key, pair] : staged) {
    RefTable& t = st->tables.at(key);
    t.rows = std::move(pair.first);
    t.rids = std::move(pair.second);
  }
  RefOutcome out;
  out.kind = RefOutcome::Kind::kAffected;
  out.affected = affected;
  return out;
}

}  // namespace

// ----------------------------------------------------------- entry points

bool IsSimpleNodeQuery(State* st, const sql::SelectStmt& stmt) {
  RNodeDef def;
  def.name = "probe";
  def.query = &stmt;
  return AnalyzeSimple(st, def).simple;
}

Result<RefCo> EvaluateCo(State* st, const co::XnfQuery& query) {
  return EvaluateCoImpl(st, query, /*allow_materialize=*/true);
}

Status CreateXnfView(State* st, const std::string& name,
                     const std::string& definition) {
  // Validation mirrors the engine's CREATE VIEW path: parse and resolve the
  // body WITHOUT a materializer — references to views carrying restrictions
  // or a partial TAKE are rejected — and only then check the name.
  XNF_ASSIGN_OR_RETURN(XnfQuery query, co::Parser::Parse(definition));
  XNF_RETURN_IF_ERROR(
      ResolveXnf(st, query, /*allow_materialize=*/false).status());
  std::string key = ToLower(name);
  if (st->tables.count(key) > 0 || st->views.count(key) > 0) {
    return Status::AlreadyExists("object '" + name + "' already exists");
  }
  RefView view;
  view.is_xnf = true;
  view.definition = definition;
  view.xnf = std::make_shared<XnfQuery>(std::move(query));
  st->views.emplace(key, std::move(view));
  return Status::Ok();
}

RefOutcome ExecuteXnfStatement(State* st, const std::string& text) {
  Result<XnfQuery> parsed = co::Parser::Parse(text);
  if (!parsed.ok()) return RefOutcome::Error(parsed.status());
  Result<RefCo> co = EvaluateCo(st, *parsed);
  if (!co.ok()) return RefOutcome::Error(co.status());
  Result<RefOutcome> out = [&]() -> Result<RefOutcome> {
    switch (parsed->action) {
      case XnfQuery::Action::kDelete:
        return ExecCoDelete(st, *co);
      case XnfQuery::Action::kUpdate:
        return ExecCoUpdate(st, *parsed, *co);
      case XnfQuery::Action::kTake: {
        RefOutcome take;
        take.kind = RefOutcome::Kind::kCo;
        take.co_canonical = RenderCanonicalCo(*co);
        return take;
      }
    }
    return Status::Internal("unhandled XNF action");
  }();
  if (!out.ok()) return RefOutcome::Error(out.status());
  return std::move(*out);
}

}  // namespace xnf::testing::refi
