// Standalone differential fuzzer.
//
// Usage:
//   fuzz_runner [--seeds=N] [--start=S] [--seed=X] [--statements=K]
//               [--tables=T] [--links=L] [--rows=R]
//
//   --seeds=N       run seeds [start, start+N) (default 100)
//   --start=S       first seed of the range (default 0)
//   --seed=X        run exactly one seed (replay mode; overrides the range)
//   --statements=K  random statements per case (default 14)
//   --tables=T      base tables per case (default 3, clamped to [2, 4])
//   --links=L       link tables per case (default 1)
//   --rows=R        initial rows per table (default 24; small values stress
//                   empty-input edge cases)
//
// Every divergence is minimized and printed as a replayable artifact; when
// SQLXNF_FUZZ_ARTIFACT names a file, artifacts are appended there too. Exit
// status is the number of diverging seeds (capped at 125).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testing/differential.h"
#include "testing/generator.h"

namespace {

bool ParseFlag(const char* arg, const char* name, long long* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  long long v = std::strtoll(arg + n + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long seeds = 100;
  long long start = 0;
  long long single = -1;
  long long statements = -1;
  long long tables = -1;
  long long links = -1;
  long long rows = -1;
  for (int i = 1; i < argc; ++i) {
    long long v = 0;
    if (ParseFlag(argv[i], "--seeds", &v)) {
      seeds = v;
    } else if (ParseFlag(argv[i], "--start", &v)) {
      start = v;
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      single = v;
    } else if (ParseFlag(argv[i], "--statements", &v)) {
      statements = v;
    } else if (ParseFlag(argv[i], "--tables", &v)) {
      tables = v;
    } else if (ParseFlag(argv[i], "--links", &v)) {
      links = v;
    } else if (ParseFlag(argv[i], "--rows", &v)) {
      rows = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: fuzz_runner [--seeds=N] [--start=S] [--seed=X] "
                   "[--statements=K] [--tables=T] [--links=L] [--rows=R]\n");
      return 125;
    }
  }
  if (single >= 0) {
    start = single;
    seeds = 1;
  }

  xnf::testing::GenOptions gen;
  if (statements > 0) gen.statements = static_cast<int>(statements);
  if (tables > 0) gen.tables = static_cast<int>(tables);
  if (links >= 0) gen.link_tables = static_cast<int>(links);
  if (rows >= 0) gen.rows_per_table = static_cast<int>(rows);

  long long failures = 0;
  for (long long s = start; s < start + seeds; ++s) {
    xnf::testing::FuzzReport report =
        xnf::testing::RunSeed(static_cast<uint64_t>(s), gen);
    if (report.ok) {
      if ((s - start + 1) % 50 == 0 || s + 1 == start + seeds) {
        std::fprintf(stderr, "[fuzz] %lld/%lld seeds ok\n", s - start + 1,
                     seeds);
      }
      continue;
    }
    ++failures;
    std::fprintf(stderr, "[fuzz] seed %lld DIVERGED\n", s);
    std::string artifact = xnf::testing::RenderArtifact(report);
    std::fwrite(artifact.data(), 1, artifact.size(), stdout);
    std::fputc('\n', stdout);
    if (!report.artifact_path.empty()) {
      std::fprintf(stderr, "[fuzz] artifact appended to %s\n",
                   report.artifact_path.c_str());
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "[fuzz] %lld of %lld seeds diverged\n", failures,
                 seeds);
  }
  return static_cast<int>(failures > 125 ? 125 : failures);
}
