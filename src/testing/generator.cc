#include "testing/generator.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

// Grammar-driven statement generator. The grammar is deliberately *policed*:
// every construct it can emit is one whose behaviour is identical across the
// engine's configuration matrix (DOP, batch/scalar, CSE on/off, indexes
// on/off) and computable by the naive reference interpreter. The policies
// that keep false divergences out:
//
//  - Expressions are strictly typed. Arithmetic only over numeric operands,
//    string functions only over strings, CASE branches share a type. The
//    batch evaluator evaluates all branches eagerly, so an error-raising
//    expression in an untaken branch would diverge from the scalar path;
//    typed generation plus literal divisors in 1..4 rules that out.
//  - SUM/AVG aggregate only INT columns: integer addition is associative, so
//    morsel-parallel accumulation order can't perturb the result the way
//    floating-point summation would.
//  - ORDER BY uses only output aliases (c0..cN) or positions; LIMIT/OFFSET
//    appear only under an ORDER BY covering every output position, so the
//    selected prefix is a deterministic multiset.
//  - SQL UPDATE never assigns the primary key (row identity would then
//    depend on scan order); INSERTed keys come from a per-table sequence,
//    with deliberate duplicate/NULL keys for error-path agreement.
//  - XNF node queries always project the key column `a` (plus any foreign
//    key the edges need), so CSE temp narrowing and the no-CSE inline path
//    match rows identically. SUCH THAT / CO SET expressions stay inside the
//    RowEvaluator dialect (no subqueries; abs/mod/lower/upper/length only)
//    with references qualified by the restriction correlation.
//  - Scalar subqueries are always aggregated, so they yield exactly one row
//    under every plan shape.
namespace xnf::testing {
namespace {

// splitmix64: tiny, high-quality, and — unlike <random> distributions —
// bit-identical on every platform, which keeps seed artifacts replayable.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  // Inclusive range.
  int Int(int lo, int hi) {
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }
  bool Chance(int percent) { return Int(0, 99) < percent; }
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Next() % v.size()];
  }

 private:
  uint64_t state_;
};

struct ColInfo {
  std::string name;
  char type;  // 'i' int, 'd' double, 's' string
};

struct TableModel {
  std::string name;
  std::vector<ColInfo> cols;  // pk "a" first
  std::string fk_col;         // "" when the table has no foreign key
  int fk_parent = -1;         // index into tables
  int64_t next_pk = 0;
};

struct LinkModel {
  std::string name;  // l{p}_{c}(pa INT, cb INT)
  int parent = 0;
  int child = 0;
};

struct SqlViewModel {
  std::string name;
  int arity = 0;  // columns c0..c{arity-1}, all INT
};

struct XnfNodeModel {
  std::string name;
  int table = -1;
  bool updatable = false;
  std::vector<ColInfo> cols;
};

struct XnfViewModel {
  std::string name;
  std::vector<XnfNodeModel> nodes;
};

// Generation context for predicates/expressions: the full SQL dialect, or
// the restricted dialect RowEvaluator implements for SUCH THAT / CO SET.
enum class Ctx { kSql, kSuchThat };

struct Src {
  std::string alias;
  std::vector<ColInfo> cols;
};

class Generator {
 public:
  Generator(uint64_t seed, const GenOptions& opt) : rng_(seed), opt_(opt) {
    opt_.tables = std::min(std::max(opt_.tables, 2), 4);
    opt_.link_tables = std::min(std::max(opt_.link_tables, 0), opt_.tables - 1);
    opt_.rows_per_table = std::max(opt_.rows_per_table, 4);
  }

  FuzzCase Run() {
    EmitSchema();
    EmitData();
    for (int i = 0; i < opt_.statements; ++i) EmitStatement();
    return std::move(out_);
  }

 private:
  void Emit(std::string stmt) { out_.statements.push_back(std::move(stmt)); }
  std::string FreshAlias() { return "q" + std::to_string(alias_n_++); }

  // ---------------------------------------------------------------- schema

  void EmitSchema() {
    for (int i = 0; i < opt_.tables; ++i) {
      TableModel t;
      // Generated names must never carry the reserved "sqlxnf_" prefix —
      // the engine rejects such CREATEs (system-view namespace), which
      // would turn every generated script into an error-path test.
      t.name = "t" + std::to_string(i);
      t.cols = {{"a", 'i'}, {"b", 'i'}, {"c", 'i'}, {"d", 'd'}, {"s", 's'}};
      std::string ddl = "CREATE TABLE " + t.name +
                        " (a INT PRIMARY KEY, b INT, c INT, d DOUBLE, "
                        "s VARCHAR";
      if (i > 0) {
        t.fk_col = "r" + std::to_string(i - 1);
        t.fk_parent = i - 1;
        t.cols.push_back({t.fk_col, 'i'});
        ddl += ", " + t.fk_col + " INT";
      }
      ddl += ")";
      // Mix explicit storage clauses into every matrix member: a USING
      // clause overrides the engine's default layout, so row-default
      // engines also exercise columnar tables (and vice versa). Weighted
      // toward columnar — the late-materialization axis only bites there.
      if (rng_.Chance(40)) {
        ddl += rng_.Chance(60) ? " USING column" : " USING row";
      }
      tables_.push_back(std::move(t));
      Emit(std::move(ddl));
    }
    for (int i = 0; i < opt_.link_tables; ++i) {
      LinkModel l;
      l.parent = i;
      l.child = i + 1;
      l.name = "l" + std::to_string(i) + "_" + std::to_string(i + 1);
      std::string ddl = "CREATE TABLE " + l.name + " (pa INT, cb INT)";
      if (rng_.Chance(30)) ddl += " USING column";
      Emit(std::move(ddl));
      links_.push_back(std::move(l));
    }
    // Some upfront secondary indexes so index-assisted plans have material
    // to work with from the first statement.
    for (const TableModel& t : tables_) {
      if (!rng_.Chance(60)) continue;
      const ColInfo& col = rng_.Pick(t.cols);
      std::string kind = rng_.Chance(30) ? "ORDERED INDEX" : "INDEX";
      Emit("CREATE " + kind + " ix" + std::to_string(index_n_++) + " ON " +
           t.name + " (" + col.name + ")");
    }
  }

  std::string IntOrNull(int null_pct, int lo, int hi) {
    if (rng_.Chance(null_pct)) return "NULL";
    return std::to_string(rng_.Int(lo, hi));
  }

  std::string FkValue(const TableModel& parent) {
    int roll = rng_.Int(0, 99);
    if (roll < 10) return "NULL";
    if (roll < 20) return std::to_string(9000 + rng_.Int(0, 99));  // orphan
    return std::to_string(
        rng_.Int(0, static_cast<int>(parent.next_pk) - 1));
  }

  std::string StrLit() {
    static const std::vector<std::string> kWords = {"ant", "bee",  "cat",
                                                    "dog", "ewe",  "fox",
                                                    "gnu", "Heron"};
    return "'" + rng_.Pick(kWords) + "'";
  }

  void EmitData() {
    for (TableModel& t : tables_) {
      int emitted = 0;
      while (emitted < opt_.rows_per_table) {
        int chunk = std::min(opt_.rows_per_table - emitted, rng_.Int(3, 6));
        std::string stmt = "INSERT INTO " + t.name + " VALUES ";
        for (int r = 0; r < chunk; ++r) {
          if (r > 0) stmt += ", ";
          stmt += "(" + std::to_string(t.next_pk++);
          stmt += ", " + IntOrNull(10, 0, 9);
          stmt += ", " + IntOrNull(10, 0, 9);
          stmt += rng_.Chance(10)
                      ? ", NULL"
                      : ", " + std::to_string(rng_.Int(0, 9)) + ".5";
          stmt += rng_.Chance(10) ? ", NULL" : ", " + StrLit();
          if (t.fk_parent >= 0) {
            stmt += ", " + FkValue(tables_[t.fk_parent]);
          }
          stmt += ")";
        }
        Emit(std::move(stmt));
        emitted += chunk;
      }
    }
    for (const LinkModel& l : links_) {
      std::string stmt = "INSERT INTO " + l.name + " VALUES ";
      int rows = opt_.rows_per_table;
      for (int r = 0; r < rows; ++r) {
        if (r > 0) stmt += ", ";
        stmt += "(" + FkValue(tables_[l.parent]) + ", " +
                FkValue(tables_[l.child]) + ")";
      }
      Emit(std::move(stmt));
    }
  }

  // ----------------------------------------------------------- expressions

  std::vector<std::pair<std::string, char>> ColsOfType(
      const std::vector<Src>& scope, char type) {
    std::vector<std::pair<std::string, char>> out;
    for (const Src& s : scope) {
      for (const ColInfo& c : s.cols) {
        if (c.type == type) out.push_back({s.alias + "." + c.name, type});
      }
    }
    return out;
  }

  // A qualified reference to a column of the given type, or a literal when
  // the scope has none.
  std::string ColRef(const std::vector<Src>& scope, char type) {
    auto cols = ColsOfType(scope, type);
    if (cols.empty()) {
      if (type == 's') return StrLit();
      if (type == 'd') return std::to_string(rng_.Int(0, 9)) + ".5";
      return std::to_string(rng_.Int(0, 9));
    }
    return rng_.Pick(cols).first;
  }

  std::string IntExpr(const std::vector<Src>& scope, int depth, Ctx ctx) {
    int roll = rng_.Int(0, 99);
    if (depth <= 0 || roll < 35) return ColRef(scope, 'i');
    if (roll < 55) return std::to_string(rng_.Int(0, 9));
    if (roll < 75) {
      static const std::vector<std::string> kOps = {" + ", " - ", " * "};
      return "(" + IntExpr(scope, depth - 1, ctx) + rng_.Pick(kOps) +
             IntExpr(scope, depth - 1, ctx) + ")";
    }
    if (roll < 82) {
      // Literal divisor: division by zero stays impossible, so batch
      // evaluation of untaken branches can't raise where scalar wouldn't.
      std::string op = rng_.Chance(50) ? " / " : " % ";
      return "(" + IntExpr(scope, depth - 1, ctx) + op +
             std::to_string(rng_.Int(1, 4)) + ")";
    }
    if (roll < 88) return "abs(" + IntExpr(scope, depth - 1, ctx) + ")";
    if (roll < 93) {
      return "CASE WHEN " + Predicate(scope, depth - 1, ctx) + " THEN " +
             IntExpr(scope, depth - 1, ctx) + " ELSE " +
             IntExpr(scope, depth - 1, ctx) + " END";
    }
    if (ctx == Ctx::kSql) {
      if (roll < 96) return "length(" + StrExpr(scope, depth - 1, ctx) + ")";
      return ScalarSubquery(scope);
    }
    return "mod(" + IntExpr(scope, depth - 1, ctx) + ", " +
           std::to_string(rng_.Int(1, 4)) + ")";
  }

  std::string NumExpr(const std::vector<Src>& scope, int depth, Ctx ctx) {
    int roll = rng_.Int(0, 99);
    if (roll < 55) return IntExpr(scope, depth, ctx);
    if (roll < 80) return ColRef(scope, 'd');
    if (roll < 90 || ctx == Ctx::kSuchThat) {
      return "(" + ColRef(scope, 'd') + " + " + std::to_string(rng_.Int(0, 9)) +
             ")";
    }
    static const std::vector<std::string> kFns = {"floor", "ceil", "round"};
    return rng_.Pick(kFns) + "(" + ColRef(scope, 'd') + ")";
  }

  std::string StrExpr(const std::vector<Src>& scope, int depth, Ctx ctx) {
    int roll = rng_.Int(0, 99);
    if (depth <= 0 || roll < 50) return ColRef(scope, 's');
    if (roll < 70) return StrLit();
    if (roll < 85) {
      std::string fn = rng_.Chance(50) ? "lower" : "upper";
      return fn + "(" + StrExpr(scope, depth - 1, ctx) + ")";
    }
    if (ctx == Ctx::kSql) {
      if (rng_.Chance(50)) {
        return "substr(" + StrExpr(scope, depth - 1, ctx) + ", " +
               std::to_string(rng_.Int(1, 3)) + ", " +
               std::to_string(rng_.Int(1, 3)) + ")";
      }
      return "coalesce(" + ColRef(scope, 's') + ", " + StrLit() + ")";
    }
    return ColRef(scope, 's');
  }

  std::string TypedExpr(const std::vector<Src>& scope, int depth, Ctx ctx,
                        char type) {
    switch (type) {
      case 'd':
        return NumExpr(scope, depth, ctx);
      case 's':
        return StrExpr(scope, depth, ctx);
      default:
        return IntExpr(scope, depth, ctx);
    }
  }

  std::string CmpOp() {
    static const std::vector<std::string> kOps = {" = ",  " <> ", " < ",
                                                  " <= ", " > ",  " >= "};
    return rng_.Pick(kOps);
  }

  std::string Predicate(const std::vector<Src>& scope, int depth, Ctx ctx) {
    int roll = rng_.Int(0, 99);
    if (depth <= 0) roll = rng_.Int(0, 59);  // leaf forms only
    if (roll < 35) {
      return "(" + IntExpr(scope, depth - 1, ctx) + CmpOp() +
             IntExpr(scope, depth - 1, ctx) + ")";
    }
    if (roll < 42) {
      return "(" + NumExpr(scope, depth - 1, ctx) + CmpOp() +
             NumExpr(scope, depth - 1, ctx) + ")";
    }
    if (roll < 50) {
      return "(" + StrExpr(scope, depth - 1, ctx) + CmpOp() +
             StrExpr(scope, depth - 1, ctx) + ")";
    }
    if (roll < 58) {
      std::string not_part = rng_.Chance(30) ? " IS NOT NULL" : " IS NULL";
      char type = rng_.Chance(50) ? 'i' : (rng_.Chance(50) ? 'd' : 's');
      return "(" + ColRef(scope, type) + not_part + ")";
    }
    if (roll < 64) {
      int lo = rng_.Int(0, 5);
      std::string not_part = rng_.Chance(25) ? " NOT BETWEEN " : " BETWEEN ";
      return "(" + IntExpr(scope, depth - 1, ctx) + not_part +
             std::to_string(lo) + " AND " + std::to_string(lo + rng_.Int(0, 4)) +
             ")";
    }
    if (roll < 70) {
      std::string list;
      int n = rng_.Int(1, 4);
      for (int i = 0; i < n; ++i) {
        if (i > 0) list += ", ";
        list += std::to_string(rng_.Int(0, 9));
      }
      std::string not_part = rng_.Chance(25) ? " NOT IN (" : " IN (";
      return "(" + ColRef(scope, 'i') + not_part + list + "))";
    }
    if (roll < 76) {
      static const std::vector<std::string> kPatterns = {
          "'a%'", "'%e%'", "'c_t'", "'%o_'", "'%'", "'bee'"};
      std::string not_part = rng_.Chance(25) ? " NOT LIKE " : " LIKE ";
      return "(" + ColRef(scope, 's') + not_part + rng_.Pick(kPatterns) + ")";
    }
    if (roll < 94 || ctx == Ctx::kSuchThat) {
      int form = rng_.Int(0, 2);
      if (form == 0) return "(NOT " + Predicate(scope, depth - 1, ctx) + ")";
      std::string op = form == 1 ? " AND " : " OR ";
      return "(" + Predicate(scope, depth - 1, ctx) + op +
             Predicate(scope, depth - 1, ctx) + ")";
    }
    return SubqueryPredicate(scope);
  }

  // EXISTS / IN (SELECT ...) — possibly correlated with the outer scope.
  std::string SubqueryPredicate(const std::vector<Src>& scope) {
    const TableModel& t = rng_.Pick(tables_);
    std::string alias = FreshAlias();
    std::vector<Src> inner = {{alias, t.cols}};
    std::string where;
    bool correlate = rng_.Chance(50) && !scope.empty();
    if (correlate) {
      where = " WHERE " + alias + "." + rng_.Pick(t.cols).name + " = " +
              ColRef(scope, 'i');
      if (rng_.Chance(40)) {
        where += " AND " + Predicate(inner, 1, Ctx::kSql);
      }
    } else if (rng_.Chance(70)) {
      where = " WHERE " + Predicate(inner, 1, Ctx::kSql);
    }
    if (rng_.Chance(50)) {
      std::string not_part = rng_.Chance(30) ? "NOT EXISTS" : "EXISTS";
      return "(" + not_part + " (SELECT 1 FROM " + t.name + " " + alias +
             where + "))";
    }
    std::vector<std::string> int_cols;
    for (const ColInfo& c : t.cols) {
      if (c.type == 'i') int_cols.push_back(c.name);
    }
    std::string not_part = rng_.Chance(30) ? " NOT IN " : " IN ";
    return "(" + ColRef(scope, 'i') + not_part + "(SELECT " + alias + "." +
           rng_.Pick(int_cols) + " FROM " + t.name + " " + alias + where +
           "))";
  }

  // Scalar subqueries always aggregate, so every plan shape sees one row.
  std::string ScalarSubquery(const std::vector<Src>& scope) {
    const TableModel& t = rng_.Pick(tables_);
    std::string alias = FreshAlias();
    std::vector<Src> inner = {{alias, t.cols}};
    std::string agg = rng_.Chance(50)
                          ? "COUNT(*)"
                          : (rng_.Chance(50) ? "SUM(" : "MIN(") + alias +
                                ".b)";
    std::string where;
    if (rng_.Chance(60) && !scope.empty()) {
      where = " WHERE " + alias + ".b = " + ColRef(scope, 'i');
    }
    return "(SELECT " + agg + " FROM " + t.name + " " + alias + where + ")";
  }

  // ---------------------------------------------------------------- SELECT

  struct SelectText {
    std::string text;
    int arity = 0;
  };

  // A FROM source: base table, or (at top level) a SQL view.
  Src PickSource(std::string* name_out, bool allow_view) {
    if (allow_view && !sql_views_.empty() && rng_.Chance(25)) {
      const SqlViewModel& v = rng_.Pick(sql_views_);
      Src s;
      s.alias = FreshAlias();
      for (int i = 0; i < v.arity; ++i) {
        s.cols.push_back({"c" + std::to_string(i), 'i'});
      }
      *name_out = v.name;
      return s;
    }
    const TableModel& t = rng_.Pick(tables_);
    *name_out = t.name;
    return {FreshAlias(), t.cols};
  }

  std::string ItemsFor(const std::vector<Src>& scope, int* arity_out,
                       Ctx ctx) {
    int n = rng_.Int(1, 4);
    std::string items;
    for (int i = 0; i < n; ++i) {
      if (i > 0) items += ", ";
      char type = rng_.Chance(60) ? 'i' : (rng_.Chance(40) ? 'd' : 's');
      items += TypedExpr(scope, 2, ctx, type) + " AS c" + std::to_string(i);
    }
    *arity_out = n;
    return items;
  }

  // ORDER BY over output aliases/positions; LIMIT only under a total order.
  std::string OrderSuffix(int arity, bool grouped_keys_only, int key_count) {
    std::string suffix;
    if (rng_.Chance(grouped_keys_only ? 50 : 40)) {
      int max_pos = grouped_keys_only ? key_count : arity;
      if (max_pos == 0) return suffix;
      bool full = rng_.Chance(50) && !grouped_keys_only;
      suffix += " ORDER BY ";
      if (full) {
        for (int i = 0; i < arity; ++i) {
          if (i > 0) suffix += ", ";
          suffix += rng_.Chance(50) ? std::to_string(i + 1)
                                    : "c" + std::to_string(i);
          if (rng_.Chance(35)) suffix += " DESC";
        }
        if (rng_.Chance(50)) {
          suffix += " LIMIT " + std::to_string(rng_.Int(1, 10));
          if (rng_.Chance(40)) {
            suffix += " OFFSET " + std::to_string(rng_.Int(0, 5));
          }
        }
      } else {
        int pos = rng_.Int(1, max_pos);
        suffix += rng_.Chance(50) ? std::to_string(pos)
                                  : "c" + std::to_string(pos - 1);
        if (rng_.Chance(35)) suffix += " DESC";
      }
    }
    return suffix;
  }

  SelectText SimpleSelect(bool allow_order) {
    std::string name;
    Src src = PickSource(&name, /*allow_view=*/true);
    std::vector<Src> scope = {src};
    SelectText out;
    std::string distinct = rng_.Chance(20) ? "DISTINCT " : "";
    if (rng_.Chance(15) && distinct.empty()) {
      out.arity = static_cast<int>(src.cols.size());
      out.text = "SELECT * FROM " + name + " " + src.alias;
    } else {
      out.text = "SELECT " + distinct + ItemsFor(scope, &out.arity, Ctx::kSql) +
                 " FROM " + name + " " + src.alias;
    }
    if (rng_.Chance(70)) {
      out.text += " WHERE " + Predicate(scope, 2, Ctx::kSql);
    }
    if (allow_order) out.text += OrderSuffix(out.arity, false, 0);
    return out;
  }

  SelectText JoinSelect(bool allow_order) {
    // Two or three sources; join predicates follow the fk chains when the
    // picked tables are adjacent, else a generic equi-join on b.
    int n = rng_.Int(2, 3);
    std::vector<int> tbl;
    std::vector<Src> scope;
    for (int i = 0; i < n; ++i) {
      int idx = rng_.Int(0, static_cast<int>(tables_.size()) - 1);
      tbl.push_back(idx);
      scope.push_back({FreshAlias(), tables_[idx].cols});
    }
    auto join_pred = [&](int i, int j) {
      const TableModel& ti = tables_[tbl[i]];
      const TableModel& tj = tables_[tbl[j]];
      if (tj.fk_parent == tbl[i]) {
        return scope[j].alias + "." + tj.fk_col + " = " + scope[i].alias +
               ".a";
      }
      if (ti.fk_parent == tbl[j]) {
        return scope[i].alias + "." + ti.fk_col + " = " + scope[j].alias +
               ".a";
      }
      return scope[i].alias + ".b = " + scope[j].alias + ".b";
    };
    SelectText out;
    std::string items = ItemsFor(scope, &out.arity, Ctx::kSql);
    bool explicit_join = rng_.Chance(50);
    if (explicit_join) {
      std::string from = tables_[tbl[0]].name + " " + scope[0].alias;
      for (int i = 1; i < n; ++i) {
        std::string kind = rng_.Chance(35) ? " LEFT JOIN " : " JOIN ";
        from += kind + tables_[tbl[i]].name + " " + scope[i].alias + " ON " +
                join_pred(i - 1, i);
      }
      out.text = "SELECT " + items + " FROM " + from;
      if (rng_.Chance(50)) {
        std::vector<Src> where_scope = {scope[0]};  // NULL-safe for LEFT JOIN
        out.text += " WHERE " + Predicate(where_scope, 2, Ctx::kSql);
      }
    } else {
      std::string from;
      for (int i = 0; i < n; ++i) {
        if (i > 0) from += ", ";
        from += tables_[tbl[i]].name + " " + scope[i].alias;
      }
      std::string where = join_pred(0, 1);
      if (n == 3) where += " AND " + join_pred(1, 2);
      if (rng_.Chance(50)) where += " AND " + Predicate(scope, 2, Ctx::kSql);
      out.text = "SELECT " + items + " FROM " + from + " WHERE " + where;
    }
    if (allow_order) out.text += OrderSuffix(out.arity, false, 0);
    return out;
  }

  SelectText GroupedSelect(bool allow_order) {
    std::string name;
    Src src = PickSource(&name, /*allow_view=*/false);
    std::vector<Src> scope = {src};
    int keys = rng_.Chance(30) ? 0 : rng_.Int(1, 2);  // 0 -> scalar aggregate
    std::vector<std::string> key_exprs;
    for (int k = 0; k < keys; ++k) {
      char type = rng_.Chance(70) ? 'i' : 's';
      key_exprs.push_back(ColRef(scope, type));
    }
    auto agg_expr = [&]() -> std::string {
      int roll = rng_.Int(0, 99);
      // SUM/AVG over INT columns only: integer accumulation is exact under
      // any morsel order; float accumulation would not be.
      if (roll < 20) return "COUNT(*)";
      if (roll < 32) return "COUNT(" + ColRef(scope, 'i') + ")";
      if (roll < 42) return "COUNT(DISTINCT " + ColRef(scope, 'i') + ")";
      if (roll < 62) return "SUM(" + ColRef(scope, 'i') + ")";
      if (roll < 72) return "AVG(" + ColRef(scope, 'i') + ")";
      char type = rng_.Chance(60) ? 'i' : (rng_.Chance(50) ? 'd' : 's');
      return (rng_.Chance(50) ? "MIN(" : "MAX(") + ColRef(scope, type) + ")";
    };
    int aggs = rng_.Int(1, 2);
    std::string items;
    int pos = 0;
    for (const std::string& k : key_exprs) {
      if (pos > 0) items += ", ";
      items += k + " AS c" + std::to_string(pos++);
    }
    std::vector<std::string> agg_texts;
    for (int a = 0; a < aggs; ++a) {
      if (pos > 0) items += ", ";
      agg_texts.push_back(agg_expr());
      items += agg_texts.back() + " AS c" + std::to_string(pos++);
    }
    SelectText out;
    out.arity = pos;
    out.text = "SELECT " + items + " FROM " + name + " " + src.alias;
    if (rng_.Chance(50)) {
      out.text += " WHERE " + Predicate(scope, 2, Ctx::kSql);
    }
    if (keys > 0) {
      out.text += " GROUP BY ";
      for (int k = 0; k < keys; ++k) {
        if (k > 0) out.text += ", ";
        out.text += key_exprs[k];
      }
      if (rng_.Chance(40)) {
        out.text += " HAVING " + rng_.Pick(agg_texts) + CmpOp() +
                    std::to_string(rng_.Int(0, 20));
      }
      if (allow_order) out.text += OrderSuffix(out.arity, true, keys);
    }
    return out;
  }

  SelectText SetOpSelect() {
    int arity = rng_.Int(1, 2);
    auto branch = [&]() {
      const TableModel& t = rng_.Pick(tables_);
      std::string alias = FreshAlias();
      std::vector<Src> scope = {{alias, t.cols}};
      std::string items;
      for (int i = 0; i < arity; ++i) {
        if (i > 0) items += ", ";
        items += IntExpr(scope, 1, Ctx::kSql) + " AS c" + std::to_string(i);
      }
      std::string text = "SELECT " + items + " FROM " + t.name + " " + alias;
      if (rng_.Chance(70)) text += " WHERE " + Predicate(scope, 1, Ctx::kSql);
      return text;
    };
    static const std::vector<std::string> kOps = {
        " UNION ", " UNION ALL ", " INTERSECT ", " EXCEPT "};
    SelectText out;
    out.arity = arity;
    out.text = branch() + rng_.Pick(kOps) + branch();
    if (rng_.Chance(20)) out.text += rng_.Pick(kOps) + branch();
    return out;
  }

  // Inner query for a derived table: items are always aliased c0..cN (a
  // star projection would leak base column names the outer query doesn't
  // track).
  SelectText AliasedInnerSelect() {
    if (rng_.Chance(40)) return GroupedSelect(false);
    std::string name;
    Src src = PickSource(&name, /*allow_view=*/false);
    std::vector<Src> scope = {src};
    SelectText out;
    out.text = "SELECT " + ItemsFor(scope, &out.arity, Ctx::kSql) + " FROM " +
               name + " " + src.alias;
    if (rng_.Chance(70)) {
      out.text += " WHERE " + Predicate(scope, 2, Ctx::kSql);
    }
    return out;
  }

  SelectText DerivedSelect(bool allow_order) {
    // Outer query over an uncorrelated derived table.
    SelectText inner = AliasedInnerSelect();
    std::string alias = FreshAlias();
    Src src{alias, {}};
    for (int i = 0; i < inner.arity; ++i) {
      // Derived-table output types are not tracked; treat every column as
      // int-comparable only where safe: restrict to IS NULL and direct
      // projection, which are type-agnostic.
      src.cols.push_back({"c" + std::to_string(i), 'i'});
    }
    SelectText out;
    out.arity = inner.arity;
    std::string items;
    for (int i = 0; i < inner.arity; ++i) {
      if (i > 0) items += ", ";
      items += alias + ".c" + std::to_string(i) + " AS c" + std::to_string(i);
    }
    out.text = "SELECT " + items + " FROM (" + inner.text + ") " + alias;
    if (rng_.Chance(40)) {
      out.text += " WHERE " + alias + ".c0 IS NOT NULL";
    }
    if (allow_order) out.text += OrderSuffix(out.arity, false, 0);
    return out;
  }

  SelectText GenSelect(bool allow_order) {
    // Joins and aggregations lead: they are the consumers of the zero-copy
    // column-batch scan path (build/probe/accumulate over views), so the
    // matrix's late-materialization axis gets maximum coverage there.
    int roll = rng_.Int(0, 99);
    if (roll < 25) return SimpleSelect(allow_order);
    if (roll < 55) return JoinSelect(allow_order);
    if (roll < 80) return GroupedSelect(allow_order);
    if (roll < 90) return SetOpSelect();
    return DerivedSelect(allow_order);
  }

  // ------------------------------------------------------------------- DML

  void EmitInsert() {
    TableModel& t = tables_[rng_.Next() % tables_.size()];
    int roll = rng_.Int(0, 99);
    if (roll < 60) {
      int rows = rng_.Int(1, 3);
      std::string stmt = "INSERT INTO " + t.name + " VALUES ";
      for (int r = 0; r < rows; ++r) {
        if (r > 0) stmt += ", ";
        stmt += "(" + std::to_string(t.next_pk++) + ", " + IntOrNull(10, 0, 9) +
                ", " + IntOrNull(10, 0, 9) + ", " +
                (rng_.Chance(10) ? "NULL"
                                 : std::to_string(rng_.Int(0, 9)) + ".5") +
                ", " + (rng_.Chance(10) ? "NULL" : StrLit());
        if (t.fk_parent >= 0) stmt += ", " + FkValue(tables_[t.fk_parent]);
        stmt += ")";
      }
      Emit(std::move(stmt));
    } else if (roll < 75) {
      // Column-list form; unspecified columns become NULL.
      std::string stmt = "INSERT INTO " + t.name + " (a, b) VALUES (" +
                         std::to_string(t.next_pk++) + ", " +
                         IntOrNull(15, 0, 9) + ")";
      Emit(std::move(stmt));
    } else if (roll < 85) {
      // Deliberate duplicate key: both sides must report the same failure
      // (or the same success, if that key was deleted earlier).
      std::string stmt = "INSERT INTO " + t.name + " (a, b) VALUES (" +
                         std::to_string(rng_.Int(
                             0, static_cast<int>(t.next_pk) - 1)) +
                         ", 1)";
      Emit(std::move(stmt));
    } else if (roll < 92) {
      Emit("INSERT INTO " + t.name + " (a) VALUES (NULL)");  // NOT NULL pk
    } else {
      // INSERT ... SELECT with keys offset far above the pk sequence (and
      // the 9000+ orphan band).
      const TableModel& s = rng_.Pick(tables_);
      std::string alias = FreshAlias();
      int64_t offset = 20000 + 1000 * static_cast<int64_t>(stmt_n_);
      Emit("INSERT INTO " + t.name + " (a, b) SELECT " + alias + ".a + " +
           std::to_string(offset) + ", " + alias + ".b FROM " + s.name + " " +
           alias + " WHERE " + alias + ".a < " + std::to_string(rng_.Int(2, 8)));
    }
  }

  void EmitUpdate() {
    const TableModel& t = rng_.Pick(tables_);
    std::vector<Src> scope = {{t.name, t.cols}};
    std::string stmt = "UPDATE " + t.name + " SET ";
    int n = rng_.Int(1, 2);
    std::vector<const ColInfo*> targets;
    for (const ColInfo& c : t.cols) {
      if (c.name != "a") targets.push_back(&c);  // never rewrite the pk
    }
    for (int i = 0; i < n; ++i) {
      const ColInfo* c = targets[rng_.Next() % targets.size()];
      if (i > 0) stmt += ", ";
      if (rng_.Chance(15)) {
        stmt += c->name + " = NULL";
      } else {
        stmt += c->name + " = " + TypedExpr(scope, 2, Ctx::kSql, c->type);
      }
    }
    if (rng_.Chance(80)) stmt += " WHERE " + Predicate(scope, 2, Ctx::kSql);
    Emit(std::move(stmt));
  }

  void EmitDelete() {
    const TableModel& t = rng_.Pick(tables_);
    std::vector<Src> scope = {{t.name, t.cols}};
    std::string stmt = "DELETE FROM " + t.name;
    if (rng_.Chance(90)) {
      // Bias toward selective predicates so tables don't empty out early.
      if (rng_.Chance(50)) {
        stmt += " WHERE " + t.name + ".a = " +
                std::to_string(rng_.Int(0, static_cast<int>(t.next_pk) - 1));
      } else {
        stmt += " WHERE " + Predicate(scope, 1, Ctx::kSql) + " AND " +
                t.name + ".b = " + std::to_string(rng_.Int(0, 9));
      }
    }
    Emit(std::move(stmt));
  }

  // ------------------------------------------------------------------- DDL

  void EmitCreateIndex() {
    const TableModel& t = rng_.Pick(tables_);
    std::string kind = rng_.Chance(25) ? "ORDERED INDEX" : "INDEX";
    std::string cols = rng_.Pick(t.cols).name;
    if (rng_.Chance(30)) {
      cols += ", " + rng_.Pick(t.cols).name;  // duplicates allowed
    }
    std::string name = "ix" + std::to_string(index_n_++);
    Emit("CREATE " + kind + " " + name + " ON " + t.name + " (" + cols + ")");
    if (rng_.Chance(10)) {
      // Same name again on the same table: AlreadyExists on both sides.
      Emit("CREATE INDEX " + name + " ON " + t.name + " (b)");
    }
  }

  void EmitCreateView() {
    if (opt_.enable_xnf && rng_.Chance(35)) {
      EmitCreateXnfView();
      return;
    }
    std::string name = "v" + std::to_string(view_n_++);
    std::string src_name;
    Src src = PickSource(&src_name, /*allow_view=*/true);  // views over views
    std::vector<Src> scope = {src};
    int arity = rng_.Int(2, 3);
    std::string items;
    for (int i = 0; i < arity; ++i) {
      if (i > 0) items += ", ";
      items += IntExpr(scope, 1, Ctx::kSql) + " AS c" + std::to_string(i);
    }
    std::string body = "SELECT " + items + " FROM " + src_name + " " +
                       src.alias;
    if (rng_.Chance(60)) body += " WHERE " + Predicate(scope, 2, Ctx::kSql);
    Emit("CREATE VIEW " + name + " AS " + body);
    sql_views_.push_back({name, arity});
  }

  // --------------------------------------------------------------- XNF

  // A chain of nodes over consecutive base tables, linked by fk (or link
  // table) RELATEs. `updatable_only` keeps every node a base table or a
  // simple (pushdown-eligible) node query so CO UPDATE/DELETE apply.
  struct XnfChain {
    std::string items;                 // OUT OF body
    std::vector<XnfNodeModel> nodes;   // n0..nk
    std::vector<std::string> rels;     // e0..e{k-1}
  };

  XnfChain BuildChain(bool updatable_only) {
    XnfChain chain;
    int max_len = std::min(3, static_cast<int>(tables_.size()));
    int len = rng_.Int(2, max_len);
    int start = rng_.Int(0, static_cast<int>(tables_.size()) - len);
    for (int i = 0; i < len; ++i) {
      int tbl = start + i;
      const TableModel& t = tables_[tbl];
      XnfNodeModel node;
      node.name = "n" + std::to_string(i);
      node.table = tbl;
      int roll = rng_.Int(0, 99);
      if (!chain.items.empty()) chain.items += ", ";
      if (roll < 55) {
        node.updatable = true;
        node.cols = t.cols;
        chain.items += node.name + " AS " + t.name;
      } else {
        // Node query projecting the key, payload, and the fk the next edge
        // needs. A plain conjunctive WHERE keeps it "simple" (updatable);
        // DISTINCT makes it general (TAKE-only).
        bool general = !updatable_only && roll >= 90;
        node.updatable = !general;
        std::string alias = FreshAlias();
        std::string cols = alias + ".a AS a, " + alias + ".b AS b, " + alias +
                           ".c AS c";
        node.cols = {{"a", 'i'}, {"b", 'i'}, {"c", 'i'}};
        if (!t.fk_col.empty()) {
          cols += ", " + alias + "." + t.fk_col + " AS " + t.fk_col;
          node.cols.push_back({t.fk_col, 'i'});
        }
        std::string body = std::string("SELECT ") +
                           (general ? "DISTINCT " : "") + cols + " FROM " +
                           t.name + " " + alias;
        if (rng_.Chance(60)) {
          std::vector<Src> scope = {{alias, t.cols}};
          body += " WHERE " + Predicate(scope, 1, Ctx::kSql);
        }
        chain.items += node.name + " AS (" + body + ")";
      }
      chain.nodes.push_back(std::move(node));
    }
    for (int i = 0; i + 1 < len; ++i) {
      const TableModel& child_t = tables_[start + i + 1];
      std::string rel = "e" + std::to_string(i);
      const LinkModel* link = nullptr;
      for (const LinkModel& l : links_) {
        if (l.parent == start + i && l.child == start + i + 1) link = &l;
      }
      chain.items += ", " + rel + " AS (RELATE " + chain.nodes[i].name +
                     " p, " + chain.nodes[i + 1].name + " c";
      if (link != nullptr && rng_.Chance(35)) {
        chain.items += " USING " + link->name + " u WHERE p.a = u.pa AND "
                       "c.a = u.cb)";
      } else {
        if (rng_.Chance(20)) {
          chain.items += " WITH ATTRIBUTES p.b AS pb";
        }
        chain.items += " WHERE p.a = c." + child_t.fk_col + ")";
      }
      chain.rels.push_back(std::move(rel));
    }
    return chain;
  }

  std::string Restrictions(const std::vector<XnfNodeModel>& nodes,
                           const std::vector<std::string>& rels) {
    std::string out;
    int n = rng_.Chance(50) ? rng_.Int(1, 2) : 0;
    for (int i = 0; i < n; ++i) {
      if (!rels.empty() && rng_.Chance(35)) {
        // Edge restriction over both endpoints. Generated chains always put
        // rel k between nodes k and k+1.
        size_t r = rng_.Next() % rels.size();
        std::vector<Src> scope = {{"rp", nodes[r].cols},
                                  {"rc", nodes[r + 1].cols}};
        out += " WHERE " + rels[r] + " (rp, rc) SUCH THAT " +
               Predicate(scope, 2, Ctx::kSuchThat);
      } else {
        const XnfNodeModel& node = nodes[rng_.Next() % nodes.size()];
        std::vector<Src> scope = {{"z", node.cols}};
        out += " WHERE " + node.name + " z SUCH THAT " +
               Predicate(scope, 2, Ctx::kSuchThat);
      }
    }
    return out;
  }

  void EmitCreateXnfView() {
    std::string vname = "xv" + std::to_string(view_n_++);
    XnfViewModel model;
    model.name = vname;
    std::string body;
    if (!xnf_views_.empty() && rng_.Chance(25)) {
      // View over an XNF view: import (splice or premade, depending on the
      // inner view's restrictions) and optionally restrict further.
      const XnfViewModel& inner = rng_.Pick(xnf_views_);
      body = "OUT OF " + inner.name;
      model.nodes = inner.nodes;
      std::vector<std::string> no_rels;
      body += Restrictions(model.nodes, no_rels);
      body += " TAKE *";
    } else {
      XnfChain chain = BuildChain(/*updatable_only=*/rng_.Chance(70));
      // Unique component names per view so imports can't collide.
      std::string tag = std::to_string(view_n_);
      for (XnfNodeModel& node : chain.nodes) {
        std::string old = node.name;
        node.name = "w" + tag + old;
        ReplaceWord(&chain.items, old, node.name);
      }
      for (std::string& rel : chain.rels) {
        std::string old = rel;
        rel = "w" + tag + old;
        ReplaceWord(&chain.items, old, rel);
      }
      body = "OUT OF " + chain.items;
      body += Restrictions(chain.nodes, chain.rels);
      body += " TAKE *";
      model.nodes = chain.nodes;
    }
    Emit("CREATE VIEW " + vname + " AS " + body);
    xnf_views_.push_back(std::move(model));
  }

  // Whole-word textual rename inside an OUT OF body (names are generated, so
  // a word boundary check on [a-z0-9_] is exact).
  static void ReplaceWord(std::string* text, const std::string& from,
                          const std::string& to) {
    auto is_word = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    };
    std::string out;
    size_t pos = 0;
    while (pos < text->size()) {
      size_t hit = text->find(from, pos);
      if (hit == std::string::npos) {
        out += text->substr(pos);
        break;
      }
      bool left_ok = hit == 0 || !is_word((*text)[hit - 1]);
      size_t end = hit + from.size();
      bool right_ok = end >= text->size() || !is_word((*text)[end]);
      out += text->substr(pos, hit - pos);
      out += (left_ok && right_ok) ? to : from;
      pos = end;
    }
    *text = out;
  }

  void EmitXnfTake() {
    std::string stmt;
    if (!xnf_views_.empty() && rng_.Chance(25)) {
      const XnfViewModel& v = rng_.Pick(xnf_views_);
      stmt = "OUT OF " + v.name;
      std::vector<std::string> no_rels;
      stmt += Restrictions(v.nodes, no_rels);
      stmt += " TAKE *";
      Emit(std::move(stmt));
      return;
    }
    XnfChain chain = BuildChain(/*updatable_only=*/false);
    stmt = "OUT OF " + chain.items;
    stmt += Restrictions(chain.nodes, chain.rels);
    if (rng_.Chance(60)) {
      stmt += " TAKE *";
    } else {
      // Contiguous prefix of the chain (plus its rels) so everything taken
      // stays reachable; optionally project one node down to (a, b).
      int keep = rng_.Int(1, static_cast<int>(chain.nodes.size()));
      stmt += " TAKE ";
      for (int i = 0; i < keep; ++i) {
        if (i > 0) stmt += ", ";
        stmt += chain.nodes[i].name;
        if (rng_.Chance(30)) stmt += " (a, b)";
        if (i + 1 < keep) stmt += ", " + chain.rels[i];
      }
    }
    Emit(std::move(stmt));
  }

  void EmitCoUpdate() {
    std::string stmt;
    const std::vector<XnfNodeModel>* nodes = nullptr;
    XnfChain chain;
    if (!xnf_views_.empty() && rng_.Chance(25)) {
      const XnfViewModel& v = rng_.Pick(xnf_views_);
      stmt = "OUT OF " + v.name;
      std::vector<std::string> no_rels;
      stmt += Restrictions(v.nodes, no_rels);
      nodes = &v.nodes;
    } else {
      chain = BuildChain(/*updatable_only=*/true);
      stmt = "OUT OF " + chain.items;
      stmt += Restrictions(chain.nodes, chain.rels);
      nodes = &chain.nodes;
    }
    std::vector<const XnfNodeModel*> updatable;
    for (const XnfNodeModel& n : *nodes) {
      if (n.updatable) updatable.push_back(&n);
    }
    if (updatable.empty()) {
      // Restricted imports may have no updatable node; fall back to TAKE.
      Emit(stmt + " TAKE *");
      return;
    }
    const XnfNodeModel& target = *updatable[rng_.Next() % updatable.size()];
    std::vector<Src> scope = {{target.name, target.cols}};
    stmt += " UPDATE " + target.name + " SET ";
    if (rng_.Chance(8) && target.table >= 0 &&
        !tables_[target.table].fk_col.empty()) {
      // Assigning a relationship-defining column must fail atomically on
      // both sides (when the node is non-empty).
      stmt += tables_[target.table].fk_col + " = 1";
    } else {
      std::vector<std::string> cols;
      for (const ColInfo& c : target.cols) {
        if (c.name == "b" || c.name == "c") cols.push_back(c.name);
      }
      int n = rng_.Int(1, static_cast<int>(cols.size()));
      for (int i = 0; i < n; ++i) {
        if (i > 0) stmt += ", ";
        stmt += cols[i] + " = " +
                (rng_.Chance(12) ? "NULL"
                                 : IntExpr(scope, 2, Ctx::kSuchThat));
      }
    }
    Emit(std::move(stmt));
  }

  void EmitCoDelete() {
    std::string stmt;
    if (!xnf_views_.empty() && rng_.Chance(20)) {
      const XnfViewModel& v = rng_.Pick(xnf_views_);
      bool all_updatable = !v.nodes.empty();
      for (const XnfNodeModel& n : v.nodes) all_updatable &= n.updatable;
      if (!all_updatable) {
        EmitXnfTake();
        return;
      }
      stmt = "OUT OF " + v.name;
      std::vector<std::string> no_rels;
      stmt += Restrictions(v.nodes, no_rels);
    } else {
      XnfChain chain = BuildChain(/*updatable_only=*/true);
      stmt = "OUT OF " + chain.items;
      // Keep CO DELETE selective: always restrict so it doesn't wipe whole
      // tables in one statement.
      const XnfNodeModel& node = chain.nodes[rng_.Next() %
                                             chain.nodes.size()];
      std::vector<Src> scope = {{"z", node.cols}};
      stmt += " WHERE " + node.name + " z SUCH THAT (z.a % " +
              std::to_string(rng_.Int(3, 7)) + ") = 0";
      if (rng_.Chance(30)) stmt += Restrictions(chain.nodes, chain.rels);
    }
    stmt += " DELETE *";
    Emit(std::move(stmt));
  }

  // ------------------------------------------------------------ statements

  void EmitStatement() {
    ++stmt_n_;
    int roll = rng_.Int(0, 99);
    if (roll < 40) {
      Emit(GenSelect(/*allow_order=*/true).text);
    } else if (roll < 48) {
      if (opt_.enable_dml) EmitInsert();
      else Emit(GenSelect(true).text);
    } else if (roll < 55) {
      if (opt_.enable_dml) EmitUpdate();
      else Emit(GenSelect(true).text);
    } else if (roll < 60) {
      if (opt_.enable_dml) EmitDelete();
      else Emit(GenSelect(true).text);
    } else if (roll < 76) {
      if (opt_.enable_xnf) EmitXnfTake();
      else Emit(GenSelect(true).text);
    } else if (roll < 83) {
      if (opt_.enable_xnf) EmitCoUpdate();
      else Emit(GenSelect(true).text);
    } else if (roll < 88) {
      if (opt_.enable_xnf && opt_.enable_dml) EmitCoDelete();
      else Emit(GenSelect(true).text);
    } else if (roll < 94) {
      if (opt_.enable_ddl) EmitCreateView();
      else Emit(GenSelect(true).text);
    } else {
      if (opt_.enable_ddl) EmitCreateIndex();
      else Emit(GenSelect(true).text);
    }
  }

  Rng rng_;
  GenOptions opt_;
  FuzzCase out_;
  std::vector<TableModel> tables_;
  std::vector<LinkModel> links_;
  std::vector<SqlViewModel> sql_views_;
  std::vector<XnfViewModel> xnf_views_;
  int alias_n_ = 0;
  int view_n_ = 0;
  int index_n_ = 0;
  int stmt_n_ = 0;
};

}  // namespace

FuzzCase GenerateCase(uint64_t seed, const GenOptions& options) {
  return Generator(seed, options).Run();
}

}  // namespace xnf::testing
