// SELECT pipeline and SQL statement execution of the reference interpreter.
//
// The static pass (CheckCore / CheckChain) mirrors qgm/builder.cc — FROM
// resolution and join lowering, star expansion, head naming, grouped-query
// validation, ORDER BY key resolution, set-operation schema merging — plus
// the two static rejections that the engine raises at plan time (mixed
// select-list/expression ORDER BY keys, outer joins with more than one
// right-side quantifier). Like the engine, every statement is checked in
// full before any row is evaluated, so build-time errors fire even over
// empty tables.
//
// The runtime pass evaluates the checked structure naively: cross products
// for inner joins with ON and WHERE applied as row filters (the engine's
// box predicates), per-left-row matching for LEFT JOIN units, hash grouping
// with first-encounter group order and first-row representatives, HAVING
// before projection, DISTINCT with first-win dedup, stable sorts under the
// total value order, and OFFSET/LIMIT last. Set operations follow the
// engine's operators: streamed concatenation with incremental dedup for
// UNION, membership against the right side plus dedup for INTERSECT/EXCEPT.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "testing/reference_internal.h"

namespace xnf::testing::refi {
namespace {

using sql::Expr;
using sql::SelectStmt;
using sql::TableRef;
using K = sql::Expr::Kind;

struct RowHashF {
  size_t operator()(const Row& r) const { return HashRow(r); }
};
struct RowEqF {
  bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
};

// ------------------------------------------------------- checked structure

// One output column of a box: either an expression over the source row or a
// star-expanded source column (the engine's InputRef head).
struct HeadCol {
  const Expr* expr = nullptr;
  size_t offset = 0;  // source-row offset when expr == nullptr
  std::string name;
  Type type = Type::kNull;
};

struct OrderKeyC {
  int head_index = -1;         // >= 0: sort the projected rows by this column
  const Expr* expr = nullptr;  // else: sort the source rows by this expression
  bool ascending = true;
};

struct LojUnit;

// One FROM source producing rows of `width`: a base table, a SELECT body
// (view or derived table, both built without parent correlation), or a
// nested LEFT JOIN unit.
struct FromLeaf {
  std::string table;                         // non-empty: base table key
  const SelectStmt* select = nullptr;        // view body or derived table
  std::unique_ptr<SelectStmt> owned_select;  // owns re-parsed view bodies
  std::unique_ptr<LojUnit> loj;
  size_t width = 0;
};

// A LEFT JOIN lowered the engine's way: a dedicated nested box whose scope
// has no parent (no correlation in LEFT JOIN ON), with the left subtree
// flattened inside. Leaves [0, left_leaves) are the preserved side; the
// single remaining leaf is the optional side.
struct LojUnit {
  std::vector<Entry> entries;
  std::vector<FromLeaf> leaves;
  std::vector<const Expr*> inner_on;  // flattened inner-join ON predicates
  std::vector<const Expr*> outer_on;  // the LEFT JOIN ON condition
  size_t left_leaves = 0;
  size_t left_width = 0;
  size_t width = 0;
};

struct CheckedCore {
  const SelectStmt* stmt = nullptr;
  std::vector<Entry> entries;
  std::vector<FromLeaf> leaves;       // parallel to entries
  std::vector<const Expr*> inner_on;  // INNER JOIN ON predicates of this box
  size_t width = 0;
  bool grouped = false;
  std::vector<HeadCol> head;
  std::vector<OrderKeyC> order;
  bool has_head_keys = false;
  bool has_expr_keys = false;
};

struct CheckedChain {
  std::vector<CheckedCore> cores;
  std::vector<SelectStmt::SetOp> ops;  // ops[i] links cores[i] and cores[i+1]
  std::vector<std::string> names;
  std::vector<Type> types;
};

Result<CheckedChain> CheckChain(State* st, const SelectStmt& stmt,
                                const Scope* parent);

// ----------------------------------------------------------- FROM building

struct FromCtx {
  std::vector<Entry>* entries;
  std::vector<FromLeaf>* leaves;
  std::vector<const Expr*>* inner_on;
  size_t* width;
  const Scope* parent;  // correlation scope for ON; null inside LOJ units
};

void AppendEntry(FromCtx* c, std::string alias, Schema schema,
                 FromLeaf leaf) {
  size_t w = schema.size();
  leaf.width = w;
  c->entries->push_back(Entry{std::move(alias), std::move(schema), *c->width});
  c->leaves->push_back(std::move(leaf));
  *c->width += w;
}

Status AddRef(State* st, const TableRef& ref, FromCtx* c) {
  switch (ref.kind) {
    case TableRef::Kind::kNamed: {
      std::string key = ToLower(ref.name);
      std::string alias = ToLower(ref.alias.empty() ? ref.name : ref.alias);
      if (auto it = st->tables.find(key); it != st->tables.end()) {
        FromLeaf leaf;
        leaf.table = key;
        AppendEntry(c, alias, it->second.schema.WithQualifier(alias),
                    std::move(leaf));
        return Status::Ok();
      }
      if (auto vi = st->views.find(key); vi != st->views.end()) {
        if (vi->second.is_xnf) {
          return Status::InvalidArgument(
              "'" + ref.name +
              "' is an XNF composite-object view; reference it with OUT OF "
              "or as view.component");
        }
        sql::Parser parser(vi->second.definition);
        XNF_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> body,
                             parser.ParseSelect());
        XNF_ASSIGN_OR_RETURN(SelectShape shape,
                             CheckSelect(st, *body, nullptr));
        Schema schema;
        for (size_t i = 0; i < shape.names.size(); ++i) {
          schema.AddColumn(Column(shape.names[i], shape.types[i]));
        }
        FromLeaf leaf;
        leaf.owned_select = std::move(body);
        leaf.select = leaf.owned_select.get();
        AppendEntry(c, alias, schema.WithQualifier(alias), std::move(leaf));
        return Status::Ok();
      }
      return Status::NotFound("table or view '" + ref.name + "' not found");
    }
    case TableRef::Kind::kSubquery: {
      XNF_ASSIGN_OR_RETURN(SelectShape shape,
                           CheckSelect(st, *ref.subquery, nullptr));
      std::string alias = ToLower(ref.alias);
      Schema schema;
      for (size_t i = 0; i < shape.names.size(); ++i) {
        schema.AddColumn(Column(shape.names[i], shape.types[i]));
      }
      FromLeaf leaf;
      leaf.select = ref.subquery.get();
      AppendEntry(c, alias, schema.WithQualifier(alias), std::move(leaf));
      return Status::Ok();
    }
    case TableRef::Kind::kJoin: {
      if (ref.join_type == sql::JoinType::kInner) {
        // Flatten both sides; ON is checked over all entries so far (with
        // parent correlation available) and kept as a box predicate.
        XNF_RETURN_IF_ERROR(AddRef(st, *ref.left, c));
        XNF_RETURN_IF_ERROR(AddRef(st, *ref.right, c));
        Scope scope;
        scope.entries = c->entries;
        scope.parent = c->parent;
        XNF_RETURN_IF_ERROR(
            CheckExpr(st, *ref.on, scope, CheckOpts{}).status());
        c->inner_on->push_back(ref.on.get());
        return Status::Ok();
      }
      auto unit = std::make_unique<LojUnit>();
      FromCtx sub{&unit->entries, &unit->leaves, &unit->inner_on,
                  &unit->width, nullptr};
      XNF_RETURN_IF_ERROR(AddRef(st, *ref.left, &sub));
      unit->left_leaves = unit->leaves.size();
      unit->left_width = unit->width;
      XNF_RETURN_IF_ERROR(AddRef(st, *ref.right, &sub));
      if (unit->leaves.size() != unit->left_leaves + 1) {
        // The planner only supports a single optional-side quantifier.
        return Status::NotSupported(
            "outer join with multiple right-side quantifiers");
      }
      Scope on_scope;
      on_scope.entries = &unit->entries;
      XNF_RETURN_IF_ERROR(
          CheckExpr(st, *ref.on, on_scope, CheckOpts{}).status());
      unit->outer_on.push_back(ref.on.get());
      // The unit's output is an anonymous entry whose columns keep their
      // original qualifiers, so alias.column still resolves from outside.
      Schema joined;
      for (const Entry& e : unit->entries) {
        for (const Column& col : e.schema.columns()) joined.AddColumn(col);
      }
      FromLeaf leaf;
      leaf.loj = std::move(unit);
      AppendEntry(c, "", std::move(joined), std::move(leaf));
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled table ref kind");
}

// ------------------------------------------------------ grouped validation

// Structural equality with column references compared by what they resolve
// to, the way the engine compares built InputRefs: `x.b` and `b` are equal
// when they name the same source column.
bool ExprEqRes(const Scope& scope, const Expr& a, const Expr& b) {
  if (a.kind == K::kColumnRef && b.kind == K::kColumnRef) {
    Result<ResolvedCol> ra =
        ResolveColumn(scope, a.table, a.column, Dialect::kSql);
    Result<ResolvedCol> rb =
        ResolveColumn(scope, b.table, b.column, Dialect::kSql);
    if (ra.ok() && rb.ok()) {
      return (*ra).level == (*rb).level && (*ra).offset == (*rb).offset;
    }
    return ExprEq(a, b);
  }
  if (a.kind != b.kind) return false;
  auto args_eq = [&]() {
    if (a.args.size() != b.args.size()) return false;
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (!ExprEqRes(scope, *a.args[i], *b.args[i])) return false;
    }
    return true;
  };
  switch (a.kind) {
    case K::kLiteral:
      return a.literal.type() == b.literal.type() &&
             a.literal.TotalOrderCompare(b.literal) == 0;
    case K::kStar:
      return true;
    case K::kBinary:
      return a.bin_op == b.bin_op && args_eq();
    case K::kUnary:
      return a.un_op == b.un_op && args_eq();
    case K::kFuncCall:
      return EqualsIgnoreCase(a.column, b.column) &&
             a.distinct_arg == b.distinct_arg && args_eq();
    case K::kIsNull:
    case K::kLike:
    case K::kBetween:
    case K::kInList:
      return a.negated == b.negated && args_eq();
    case K::kCase:
      return args_eq();
    default:
      return false;
  }
}

bool IsAggCall(const Expr& e) {
  if (e.kind != K::kFuncCall) return false;
  std::string n = ToLower(e.column);
  return n == "count" || n == "sum" || n == "avg" || n == "min" || n == "max";
}

// Mirrors Builder::ValidateGroupedExpr over the AST: a subtree is valid if
// it equals a group key or is an aggregate call; bare column references
// outside those are rejected; subquery bodies are not descended into.
Status ValidateGrouped(const Expr& e, const SelectStmt& stmt,
                       const Scope& scope, const char* where) {
  for (const sql::ExprPtr& g : stmt.group_by) {
    if (ExprEqRes(scope, e, *g)) return Status::Ok();
  }
  if (IsAggCall(e)) return Status::Ok();
  if (e.kind == K::kColumnRef) {
    return Status::InvalidArgument(
        std::string("column in ") + where +
        " must appear in GROUP BY or inside an aggregate");
  }
  for (const sql::ExprPtr& a : e.args) {
    if (a != nullptr) {
      XNF_RETURN_IF_ERROR(ValidateGrouped(*a, stmt, scope, where));
    }
  }
  return Status::Ok();
}

// True iff some GROUP BY key is a column reference naming the given source
// offset in this scope level (the engine's InputRef-vs-group-key equality
// for star-expanded head columns).
bool OffsetMatchesGroupKey(const SelectStmt& stmt, const Scope& scope,
                           size_t offset) {
  for (const sql::ExprPtr& g : stmt.group_by) {
    if (g->kind != K::kColumnRef) continue;
    Result<ResolvedCol> r =
        ResolveColumn(scope, g->table, g->column, Dialect::kSql);
    if (r.ok() && (*r).level == &scope && (*r).offset == offset) return true;
  }
  return false;
}

// -------------------------------------------------------------- CheckCore

Result<CheckedCore> CheckCore(State* st, const SelectStmt& stmt,
                              const Scope* parent) {
  CheckedCore core;
  core.stmt = &stmt;
  FromCtx fctx{&core.entries, &core.leaves, &core.inner_on, &core.width,
               parent};
  for (const auto& ref : stmt.from) {
    XNF_RETURN_IF_ERROR(AddRef(st, *ref, &fctx));
  }
  Scope scope;
  scope.entries = &core.entries;
  scope.parent = parent;

  CheckOpts plain;  // allow_aggs = false
  if (stmt.where) {
    XNF_RETURN_IF_ERROR(CheckExpr(st, *stmt.where, scope, plain).status());
  }
  for (const sql::ExprPtr& g : stmt.group_by) {
    XNF_RETURN_IF_ERROR(CheckExpr(st, *g, scope, plain).status());
  }

  CheckOpts heads;
  heads.allow_aggs = true;
  for (const sql::SelectItem& item : stmt.items) {
    if (item.star) {
      std::string qualifier = ToLower(item.star_table);
      bool matched = false;
      for (const Entry& e : core.entries) {
        const Schema& s = e.schema;
        for (size_t ci = 0; ci < s.size(); ++ci) {
          if (!qualifier.empty() &&
              !EqualsIgnoreCase(s.column(ci).table, qualifier)) {
            continue;
          }
          matched = true;
          HeadCol h;
          h.offset = e.offset + ci;
          h.name = s.column(ci).name;
          h.type = s.column(ci).type;
          core.head.push_back(std::move(h));
        }
      }
      if (!matched) {
        return Status::NotFound(qualifier.empty()
                                    ? "SELECT * with empty FROM"
                                    : "no columns match '" + item.star_table +
                                          ".*'");
      }
      continue;
    }
    XNF_ASSIGN_OR_RETURN(Type t, CheckExpr(st, *item.expr, scope, heads));
    HeadCol h;
    h.expr = item.expr.get();
    h.type = t;
    if (!item.alias.empty()) {
      h.name = ToLower(item.alias);
    } else if (item.expr->kind == K::kColumnRef) {
      h.name = ToLower(item.expr->column);
    } else {
      h.name = "col" + std::to_string(core.head.size() + 1);
    }
    core.head.push_back(std::move(h));
  }

  if (stmt.having) {
    XNF_RETURN_IF_ERROR(CheckExpr(st, *stmt.having, scope, heads).status());
  }

  bool has_aggs = false;
  for (const HeadCol& h : core.head) {
    if (h.expr != nullptr && HasAggregate(*h.expr)) has_aggs = true;
  }
  if (stmt.having && HasAggregate(*stmt.having)) has_aggs = true;
  core.grouped = !stmt.group_by.empty() || has_aggs;

  if (core.grouped) {
    for (const HeadCol& h : core.head) {
      if (h.expr != nullptr) {
        XNF_RETURN_IF_ERROR(
            ValidateGrouped(*h.expr, stmt, scope, "SELECT list"));
      } else if (!OffsetMatchesGroupKey(stmt, scope, h.offset)) {
        return Status::InvalidArgument(
            "column in SELECT list must appear in GROUP BY or inside an "
            "aggregate");
      }
    }
    if (stmt.having) {
      XNF_RETURN_IF_ERROR(ValidateGrouped(*stmt.having, stmt, scope,
                                          "HAVING"));
    }
  } else if (stmt.having) {
    return Status::InvalidArgument("HAVING without GROUP BY or aggregates");
  }

  for (const sql::OrderItem& o : stmt.order_by) {
    OrderKeyC key;
    key.ascending = o.ascending;
    bool resolved = false;
    if (o.expr->kind == K::kColumnRef && o.expr->table.empty()) {
      std::string name = ToLower(o.expr->column);
      for (size_t i = 0; i < core.head.size(); ++i) {
        if (core.head[i].name == name) {
          key.head_index = static_cast<int>(i);
          resolved = true;
          break;
        }
      }
    } else if (o.expr->kind == K::kLiteral && o.expr->literal.is_int()) {
      int64_t pos = o.expr->literal.AsInt();
      if (pos < 1 || pos > static_cast<int64_t>(core.head.size())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      key.head_index = static_cast<int>(pos - 1);
      resolved = true;
    }
    if (!resolved) {
      XNF_RETURN_IF_ERROR(CheckExpr(st, *o.expr, scope, heads).status());
      if (core.grouped) {
        // Must match a head expression, and is then converted to a head key.
        for (size_t i = 0; i < core.head.size() && key.head_index < 0; ++i) {
          bool match =
              core.head[i].expr != nullptr
                  ? ExprEqRes(scope, *core.head[i].expr, *o.expr)
                  : (o.expr->kind == K::kColumnRef && [&] {
                      Result<ResolvedCol> r = ResolveColumn(
                          scope, o.expr->table, o.expr->column, Dialect::kSql);
                      return r.ok() && (*r).level == &scope &&
                             (*r).offset == core.head[i].offset;
                    }());
          if (match) key.head_index = static_cast<int>(i);
        }
        if (key.head_index < 0) {
          return Status::NotSupported(
              "ORDER BY expression must appear in the SELECT list of a "
              "grouped query");
        }
      } else {
        key.expr = o.expr.get();
      }
    }
    if (key.head_index >= 0) {
      core.has_head_keys = true;
    } else {
      core.has_expr_keys = true;
    }
    core.order.push_back(key);
  }
  if (core.has_expr_keys && core.has_head_keys) {
    return Status::NotSupported(
        "mixing select-list and expression ORDER BY keys");
  }
  return core;
}

Result<CheckedChain> CheckChain(State* st, const SelectStmt& stmt,
                                const Scope* parent) {
  CheckedChain chain;
  XNF_ASSIGN_OR_RETURN(CheckedCore first, CheckCore(st, stmt, parent));
  chain.names.reserve(first.head.size());
  for (const HeadCol& h : first.head) {
    chain.names.push_back(h.name);
    chain.types.push_back(h.type);
  }
  chain.cores.push_back(std::move(first));
  const SelectStmt* link = &stmt;
  while (link->union_next != nullptr) {
    const SelectStmt* next = link->union_next.get();
    XNF_ASSIGN_OR_RETURN(CheckedCore right, CheckCore(st, *next, parent));
    if (right.head.size() != chain.types.size()) {
      return Status::InvalidArgument(
          "set operation branches have different numbers of columns");
    }
    for (size_t c = 0; c < chain.types.size(); ++c) {
      Type a = chain.types[c];
      Type b = right.head[c].type;
      if (a == b || b == Type::kNull) continue;
      if (a == Type::kNull) {
        chain.types[c] = b;
      } else if ((a == Type::kInt || a == Type::kDouble) &&
                 (b == Type::kInt || b == Type::kDouble)) {
        chain.types[c] = Type::kDouble;
      } else {
        return Status::InvalidArgument(
            "set operation branch column types differ");
      }
    }
    chain.ops.push_back(link->set_op);
    chain.cores.push_back(std::move(right));
    link = next;
  }
  return chain;
}

// ---------------------------------------------------------------- runtime

Result<std::vector<Row>> EvalCore(State* st, const CheckedCore& core,
                                  const Scope* parent);

Result<std::vector<Row>> EvalLoj(State* st, const LojUnit& unit);

Result<std::vector<Row>> EvalLeaf(State* st, const FromLeaf& leaf) {
  if (!leaf.table.empty()) {
    return st->tables.at(leaf.table).rows;
  }
  if (leaf.select != nullptr) {
    XNF_ASSIGN_OR_RETURN(SelectOut out, EvalSelect(st, *leaf.select, nullptr));
    return std::move(out.rows);
  }
  return EvalLoj(st, *leaf.loj);
}

// Cross product of leaf row sets in entry order.
Result<std::vector<Row>> CrossLeaves(State* st,
                                     const std::vector<FromLeaf>& leaves,
                                     size_t first, size_t last) {
  std::vector<Row> rows = {Row{}};
  for (size_t i = first; i < last; ++i) {
    XNF_ASSIGN_OR_RETURN(std::vector<Row> leaf_rows,
                         EvalLeaf(st, leaves[i]));
    std::vector<Row> next;
    next.reserve(rows.size() * leaf_rows.size());
    for (const Row& l : rows) {
      for (const Row& r : leaf_rows) {
        Row combined = l;
        combined.insert(combined.end(), r.begin(), r.end());
        next.push_back(std::move(combined));
      }
    }
    rows = std::move(next);
  }
  return rows;
}

Result<std::vector<Row>> EvalLoj(State* st, const LojUnit& unit) {
  XNF_ASSIGN_OR_RETURN(std::vector<Row> left,
                       CrossLeaves(st, unit.leaves, 0, unit.left_leaves));
  Scope scope;
  scope.entries = &unit.entries;
  // Inner-join predicates of the preserved side only reference preserved
  // columns; applying them before the outer join is equivalent to the
  // engine's residual placement because null-extension never changes them.
  std::vector<Row> kept;
  for (Row& row : left) {
    scope.row = &row;
    bool keep = true;
    for (const Expr* p : unit.inner_on) {
      XNF_ASSIGN_OR_RETURN(bool ok,
                           EvalPred(st, *p, scope, Dialect::kSql, nullptr));
      if (!ok) {
        keep = false;
        break;
      }
    }
    if (keep) kept.push_back(std::move(row));
  }
  XNF_ASSIGN_OR_RETURN(std::vector<Row> right,
                       EvalLeaf(st, unit.leaves[unit.left_leaves]));
  size_t right_width = unit.width - unit.left_width;
  std::vector<Row> out;
  for (const Row& l : kept) {
    bool matched = false;
    for (const Row& r : right) {
      Row combined = l;
      combined.insert(combined.end(), r.begin(), r.end());
      scope.row = &combined;
      bool ok = true;
      for (const Expr* p : unit.outer_on) {
        XNF_ASSIGN_OR_RETURN(
            bool v, EvalPred(st, *p, scope, Dialect::kSql, nullptr));
        if (!v) {
          ok = false;
          break;
        }
      }
      if (ok) {
        matched = true;
        out.push_back(std::move(combined));
      }
    }
    if (!matched) {
      Row padded = l;
      padded.resize(padded.size() + right_width, Value::Null());
      out.push_back(std::move(padded));
    }
  }
  return out;
}

void SortRowsByHeadKeys(std::vector<Row>* rows,
                        const std::vector<OrderKeyC>& keys) {
  std::stable_sort(rows->begin(), rows->end(),
                   [&](const Row& a, const Row& b) {
                     for (const OrderKeyC& k : keys) {
                       int c = a[k.head_index].TotalOrderCompare(
                           b[k.head_index]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
}

void ApplyLimit(const SelectStmt& stmt, std::vector<Row>* rows) {
  if (!stmt.limit.has_value() && !stmt.offset.has_value()) return;
  int64_t offset = stmt.offset.value_or(0);
  int64_t limit = stmt.limit.value_or(
      std::numeric_limits<int64_t>::max());
  std::vector<Row> out;
  for (Row& r : *rows) {
    if (offset > 0) {
      --offset;
      continue;
    }
    if (static_cast<int64_t>(out.size()) >= limit) break;
    out.push_back(std::move(r));
  }
  *rows = std::move(out);
}

Result<std::vector<Row>> EvalCore(State* st, const CheckedCore& core,
                                  const Scope* parent) {
  const SelectStmt& stmt = *core.stmt;
  Scope scope;
  scope.entries = &core.entries;
  scope.parent = parent;

  // FROM-less SELECT: the engine's zero-quantifier plan applies only the
  // WHERE predicate, the projection, and LIMIT/OFFSET.
  if (core.leaves.empty()) {
    std::vector<Row> out;
    Row empty;
    scope.row = &empty;
    bool keep = true;
    if (stmt.where) {
      XNF_ASSIGN_OR_RETURN(
          keep, EvalPred(st, *stmt.where, scope, Dialect::kSql, nullptr));
    }
    if (keep) {
      Row row;
      for (const HeadCol& h : core.head) {
        XNF_ASSIGN_OR_RETURN(
            Value v, Eval(st, *h.expr, scope, Dialect::kSql, nullptr));
        row.push_back(std::move(v));
      }
      out.push_back(std::move(row));
    }
    ApplyLimit(stmt, &out);
    return out;
  }

  XNF_ASSIGN_OR_RETURN(std::vector<Row> src,
                       CrossLeaves(st, core.leaves, 0, core.leaves.size()));

  std::vector<Row> filtered;
  for (Row& row : src) {
    scope.row = &row;
    bool keep = true;
    for (const Expr* p : core.inner_on) {
      XNF_ASSIGN_OR_RETURN(bool ok,
                           EvalPred(st, *p, scope, Dialect::kSql, nullptr));
      if (!ok) {
        keep = false;
        break;
      }
    }
    if (keep && stmt.where) {
      XNF_ASSIGN_OR_RETURN(
          keep, EvalPred(st, *stmt.where, scope, Dialect::kSql, nullptr));
    }
    if (keep) filtered.push_back(std::move(row));
  }

  std::vector<Row> projected;
  if (core.grouped) {
    // First-encounter group order; the representative is the first row.
    struct Group {
      std::vector<const Row*> rows;
    };
    std::vector<Row> keys_of;
    std::vector<Group> groups;
    std::unordered_map<Row, size_t, RowHashF, RowEqF> index;
    if (stmt.group_by.empty()) {
      groups.emplace_back();  // scalar aggregate: one group, possibly empty
      for (const Row& row : filtered) groups[0].rows.push_back(&row);
    } else {
      for (const Row& row : filtered) {
        scope.row = &row;
        Row key;
        for (const sql::ExprPtr& g : stmt.group_by) {
          XNF_ASSIGN_OR_RETURN(
              Value v, Eval(st, *g, scope, Dialect::kSql, nullptr));
          key.push_back(std::move(v));
        }
        auto [it, inserted] = index.emplace(std::move(key), groups.size());
        if (inserted) groups.emplace_back();
        groups[it->second].rows.push_back(&row);
      }
    }
    for (const Group& g : groups) {
      Row rep = g.rows.empty() ? Row(core.width, Value::Null()) : *g.rows[0];
      Scope gscope;
      gscope.entries = &core.entries;
      gscope.row = &rep;
      gscope.parent = parent;
      GroupCtx gctx;
      gctx.rows = &g.rows;
      gctx.scope = &gscope;
      if (stmt.having) {
        XNF_ASSIGN_OR_RETURN(
            bool keep,
            EvalPred(st, *stmt.having, gscope, Dialect::kSql, &gctx));
        if (!keep) continue;
      }
      Row out;
      for (const HeadCol& h : core.head) {
        if (h.expr == nullptr) {
          out.push_back(rep[h.offset]);
        } else {
          XNF_ASSIGN_OR_RETURN(
              Value v, Eval(st, *h.expr, gscope, Dialect::kSql, &gctx));
          out.push_back(std::move(v));
        }
      }
      projected.push_back(std::move(out));
    }
  } else {
    if (core.has_expr_keys) {
      // Pre-projection sort of the source rows by the key expressions.
      std::vector<std::vector<Value>> key_vals;
      key_vals.reserve(filtered.size());
      for (const Row& row : filtered) {
        scope.row = &row;
        std::vector<Value> vals;
        for (const OrderKeyC& k : core.order) {
          XNF_ASSIGN_OR_RETURN(
              Value v, Eval(st, *k.expr, scope, Dialect::kSql, nullptr));
          vals.push_back(std::move(v));
        }
        key_vals.push_back(std::move(vals));
      }
      std::vector<size_t> order(filtered.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         for (size_t k = 0; k < core.order.size(); ++k) {
                           int c = key_vals[a][k].TotalOrderCompare(
                               key_vals[b][k]);
                           if (c != 0) {
                             return core.order[k].ascending ? c < 0 : c > 0;
                           }
                         }
                         return false;
                       });
      std::vector<Row> sorted;
      sorted.reserve(filtered.size());
      for (size_t i : order) sorted.push_back(std::move(filtered[i]));
      filtered = std::move(sorted);
    }
    for (const Row& row : filtered) {
      scope.row = &row;
      Row out;
      for (const HeadCol& h : core.head) {
        if (h.expr == nullptr) {
          out.push_back(row[h.offset]);
        } else {
          XNF_ASSIGN_OR_RETURN(
              Value v, Eval(st, *h.expr, scope, Dialect::kSql, nullptr));
          out.push_back(std::move(v));
        }
      }
      projected.push_back(std::move(out));
    }
  }

  if (stmt.distinct) {
    std::unordered_set<Row, RowHashF, RowEqF> seen;
    std::vector<Row> deduped;
    for (Row& r : projected) {
      if (seen.insert(r).second) deduped.push_back(std::move(r));
    }
    projected = std::move(deduped);
  }

  if (core.has_head_keys) {
    SortRowsByHeadKeys(&projected, core.order);
  }

  ApplyLimit(stmt, &projected);
  return projected;
}

Result<std::vector<Row>> EvalChainRows(State* st, const CheckedChain& chain,
                                       const Scope* parent) {
  XNF_ASSIGN_OR_RETURN(std::vector<Row> rows,
                       EvalCore(st, chain.cores[0], parent));
  for (size_t i = 0; i + 1 < chain.cores.size(); ++i) {
    XNF_ASSIGN_OR_RETURN(std::vector<Row> right,
                         EvalCore(st, chain.cores[i + 1], parent));
    switch (chain.ops[i]) {
      case SelectStmt::SetOp::kUnionAll: {
        for (Row& r : right) rows.push_back(std::move(r));
        break;
      }
      case SelectStmt::SetOp::kUnion: {
        std::unordered_set<Row, RowHashF, RowEqF> seen;
        std::vector<Row> out;
        for (Row& r : rows) {
          if (seen.insert(r).second) out.push_back(std::move(r));
        }
        for (Row& r : right) {
          if (seen.insert(r).second) out.push_back(std::move(r));
        }
        rows = std::move(out);
        break;
      }
      case SelectStmt::SetOp::kIntersect:
      case SelectStmt::SetOp::kExcept: {
        bool is_except = chain.ops[i] == SelectStmt::SetOp::kExcept;
        std::unordered_set<Row, RowHashF, RowEqF> right_set(
            std::make_move_iterator(right.begin()),
            std::make_move_iterator(right.end()));
        std::unordered_set<Row, RowHashF, RowEqF> emitted;
        std::vector<Row> out;
        for (Row& r : rows) {
          bool in_right = right_set.count(r) > 0;
          if (in_right == is_except) continue;
          if (!emitted.insert(r).second) continue;
          out.push_back(std::move(r));
        }
        rows = std::move(out);
        break;
      }
    }
  }
  return rows;
}

}  // namespace

Result<SelectShape> CheckSelect(State* st, const sql::SelectStmt& stmt,
                                const Scope* parent) {
  XNF_ASSIGN_OR_RETURN(CheckedChain chain, CheckChain(st, stmt, parent));
  SelectShape shape;
  shape.names = std::move(chain.names);
  shape.types = std::move(chain.types);
  return shape;
}

Result<SelectOut> EvalSelect(State* st, const sql::SelectStmt& stmt,
                             const Scope* parent) {
  XNF_ASSIGN_OR_RETURN(CheckedChain chain, CheckChain(st, stmt, parent));
  SelectOut out;
  out.names = chain.names;
  out.types = chain.types;
  XNF_ASSIGN_OR_RETURN(out.rows, EvalChainRows(st, chain, parent));
  if (chain.cores.size() == 1) {
    const CheckedCore& core = chain.cores[0];
    if (core.has_head_keys && !core.leaves.empty()) {
      std::set<int> covered;
      for (const OrderKeyC& k : core.order) {
        out.order_keys.emplace_back(k.head_index, k.ascending);
        covered.insert(k.head_index);
      }
      out.full_order = covered.size() == core.head.size();
    }
  }
  return out;
}

// ------------------------------------------------------------- statements

namespace {

Result<int64_t> ExecInsert(State* st, const sql::InsertStmt& stmt) {
  auto it = st->tables.find(ToLower(stmt.table));
  if (it == st->tables.end()) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  RefTable& table = it->second;
  const Schema& schema = table.schema;

  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) positions.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      XNF_ASSIGN_OR_RETURN(size_t i, schema.Resolve("", c));
      positions.push_back(i);
    }
  }

  std::vector<Row> rows;
  if (stmt.select != nullptr) {
    XNF_ASSIGN_OR_RETURN(SelectOut out, EvalSelect(st, *stmt.select, nullptr));
    if (out.names.size() != positions.size()) {
      return Status::InvalidArgument("INSERT ... SELECT column count mismatch");
    }
    rows = std::move(out.rows);
  } else {
    // Constant expressions: checked and evaluated over an empty one-entry
    // scope, like the engine's BuildScalar over an empty schema — column
    // references fail to resolve and subqueries are rejected.
    std::vector<Entry> entries;
    entries.push_back(Entry{"t", Schema(), 0});
    Row empty_row;
    Scope scope;
    scope.entries = &entries;
    scope.row = &empty_row;
    CheckOpts opts;
    opts.allow_subqueries = false;
    for (const auto& value_row : stmt.rows) {
      if (value_row.size() != positions.size()) {
        return Status::InvalidArgument("INSERT value count mismatch");
      }
      Row row;
      row.reserve(value_row.size());
      for (const sql::ExprPtr& e : value_row) {
        XNF_RETURN_IF_ERROR(CheckExpr(st, *e, scope, opts).status());
        XNF_ASSIGN_OR_RETURN(Value v,
                             Eval(st, *e, scope, Dialect::kSql, nullptr));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }

  // Apply statement-atomically: each row is coerced, constraint-checked,
  // and checked against the primary keys of existing rows and of the rows
  // inserted so far; any failure leaves the table untouched.
  auto pk = schema.PrimaryKeyIndex();
  std::vector<Row> staged;
  for (Row& src : rows) {
    Row full(schema.size(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      full[positions[i]] = std::move(src[i]);
    }
    XNF_RETURN_IF_ERROR(schema.CheckAndCoerceRow(&full));
    if (pk.has_value()) {
      auto collides = [&](const std::vector<Row>& existing) {
        for (const Row& r : existing) {
          if (r[*pk].GroupEquals(full[*pk])) return true;
        }
        return false;
      };
      if (collides(table.rows) || collides(staged)) {
        return Status::AlreadyExists("duplicate key in unique index");
      }
    }
    staged.push_back(std::move(full));
  }
  int64_t inserted = static_cast<int64_t>(staged.size());
  for (Row& r : staged) {
    table.rows.push_back(std::move(r));
    table.rids.push_back(table.next_rid++);
  }
  return inserted;
}

Result<int64_t> ExecUpdate(State* st, const sql::UpdateStmt& stmt) {
  std::string key = ToLower(stmt.table);
  auto it = st->tables.find(key);
  if (it == st->tables.end()) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  RefTable& table = it->second;

  std::vector<Entry> entries;
  entries.push_back(Entry{key, table.schema, 0});
  Scope scope;
  scope.entries = &entries;
  CheckOpts opts;
  opts.allow_subqueries = false;
  if (stmt.where) {
    XNF_RETURN_IF_ERROR(CheckExpr(st, *stmt.where, scope, opts).status());
  }
  struct Asg {
    size_t column;
    const Expr* expr;
  };
  std::vector<Asg> assignments;
  for (const auto& [col, expr] : stmt.assignments) {
    XNF_ASSIGN_OR_RETURN(size_t i, table.schema.Resolve("", col));
    XNF_RETURN_IF_ERROR(CheckExpr(st, *expr, scope, opts).status());
    assignments.push_back(Asg{i, expr.get()});
  }

  // Phase 1: the WHERE predicate is evaluated on every row (its errors fire
  // even for rows that would not match); assignment expressions are
  // evaluated only for matched rows, against the original values.
  std::vector<std::pair<size_t, Row>> planned;
  for (size_t ri = 0; ri < table.rows.size(); ++ri) {
    const Row& row = table.rows[ri];
    scope.row = &row;
    if (stmt.where) {
      XNF_ASSIGN_OR_RETURN(
          bool keep, EvalPred(st, *stmt.where, scope, Dialect::kSql, nullptr));
      if (!keep) continue;
    }
    Row updated = row;
    for (const Asg& a : assignments) {
      XNF_ASSIGN_OR_RETURN(Value v,
                           Eval(st, *a.expr, scope, Dialect::kSql, nullptr));
      updated[a.column] = std::move(v);
    }
    planned.emplace_back(ri, std::move(updated));
  }

  // Phase 2: apply atomically over a staged copy; primary-key collisions
  // are checked against the in-progress state, like sequential unique-index
  // maintenance.
  std::vector<Row> staged = table.rows;
  auto pk = table.schema.PrimaryKeyIndex();
  for (auto& [ri, new_row] : planned) {
    XNF_RETURN_IF_ERROR(table.schema.CheckAndCoerceRow(&new_row));
    if (pk.has_value()) {
      for (size_t j = 0; j < staged.size(); ++j) {
        if (j == ri) continue;
        if (staged[j][*pk].GroupEquals(new_row[*pk])) {
          return Status::AlreadyExists("duplicate key in unique index");
        }
      }
    }
    staged[ri] = std::move(new_row);
  }
  table.rows = std::move(staged);
  return static_cast<int64_t>(planned.size());
}

Result<int64_t> ExecDelete(State* st, const sql::DeleteStmt& stmt) {
  std::string key = ToLower(stmt.table);
  auto it = st->tables.find(key);
  if (it == st->tables.end()) {
    return Status::NotFound("table '" + stmt.table + "' not found");
  }
  RefTable& table = it->second;
  std::vector<Entry> entries;
  entries.push_back(Entry{key, table.schema, 0});
  Scope scope;
  scope.entries = &entries;
  CheckOpts opts;
  opts.allow_subqueries = false;
  if (stmt.where) {
    XNF_RETURN_IF_ERROR(CheckExpr(st, *stmt.where, scope, opts).status());
  }
  std::vector<char> victim(table.rows.size(), stmt.where == nullptr);
  if (stmt.where) {
    for (size_t ri = 0; ri < table.rows.size(); ++ri) {
      scope.row = &table.rows[ri];
      XNF_ASSIGN_OR_RETURN(
          bool keep, EvalPred(st, *stmt.where, scope, Dialect::kSql, nullptr));
      victim[ri] = keep;
    }
  }
  std::vector<Row> rows;
  std::vector<int64_t> rids;
  int64_t removed = 0;
  for (size_t ri = 0; ri < table.rows.size(); ++ri) {
    if (victim[ri]) {
      ++removed;
      continue;
    }
    rows.push_back(std::move(table.rows[ri]));
    rids.push_back(table.rids[ri]);
  }
  table.rows = std::move(rows);
  table.rids = std::move(rids);
  return removed;
}

bool NameExists(const State& st, const std::string& key) {
  return st.tables.count(key) > 0 || st.views.count(key) > 0;
}

Result<RefOutcome> DispatchSql(State* st, sql::Statement& stmt) {
  RefOutcome out;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      XNF_ASSIGN_OR_RETURN(SelectOut sel,
                           EvalSelect(st, *stmt.select, nullptr));
      out.kind = RefOutcome::Kind::kRows;
      out.rows = std::move(sel.rows);
      out.order_keys = std::move(sel.order_keys);
      out.full_order = sel.full_order;
      return out;
    }
    case sql::Statement::Kind::kCreateTable: {
      std::string key = ToLower(stmt.create_table->name);
      if (NameExists(*st, key)) {
        return Status::AlreadyExists("object '" + stmt.create_table->name +
                                     "' already exists");
      }
      Schema schema;
      for (const sql::ColumnDef& c : stmt.create_table->columns) {
        Column col(ToLower(c.name), c.type);
        col.not_null = c.not_null;
        col.primary_key = c.primary_key;
        schema.AddColumn(std::move(col));
      }
      RefTable table;
      table.schema = schema.WithQualifier(key);
      bool has_pk = table.schema.PrimaryKeyIndex().has_value();
      st->tables.emplace(key, std::move(table));
      st->table_order.push_back(key);
      auto& indexes = st->table_indexes[key];
      if (has_pk) indexes.insert(key + "_pk");
      return out;
    }
    case sql::Statement::Kind::kCreateIndex: {
      const sql::CreateIndexStmt& ci = *stmt.create_index;
      std::string tkey = ToLower(ci.table);
      auto it = st->tables.find(tkey);
      if (it == st->tables.end()) {
        return Status::NotFound("table '" + ci.table + "' not found");
      }
      std::string iname = ToLower(ci.name);
      auto& names = st->table_indexes[tkey];
      if (names.count(iname) > 0) {
        return Status::AlreadyExists("index '" + ci.name +
                                     "' already exists");
      }
      std::vector<size_t> cols;
      for (const std::string& c : ci.columns) {
        XNF_ASSIGN_OR_RETURN(size_t i, it->second.schema.Resolve("", c));
        cols.push_back(i);
      }
      if (ci.unique) {
        // Backfill over existing rows fails on duplicate keys, discarding
        // the index.
        std::unordered_set<Row, RowHashF, RowEqF> seen;
        for (const Row& r : it->second.rows) {
          Row key_row;
          for (size_t i : cols) key_row.push_back(r[i]);
          if (!seen.insert(std::move(key_row)).second) {
            return Status::AlreadyExists("duplicate key in unique index");
          }
        }
      }
      names.insert(iname);
      return out;
    }
    case sql::Statement::Kind::kCreateView: {
      const sql::CreateViewStmt& cv = *stmt.create_view;
      std::string key = ToLower(cv.name);
      if (cv.is_xnf) {
        XNF_RETURN_IF_ERROR(CreateXnfView(st, cv.name, cv.definition));
        return out;
      }
      // The body is validated before the name, matching the engine (which
      // builds the view body before the catalog's existence check).
      sql::Parser body(cv.definition);
      XNF_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> select,
                           body.ParseSelect());
      XNF_RETURN_IF_ERROR(CheckSelect(st, *select, nullptr).status());
      if (NameExists(*st, key)) {
        return Status::AlreadyExists("object '" + cv.name +
                                     "' already exists");
      }
      RefView view;
      view.is_xnf = false;
      view.definition = cv.definition;
      st->views.emplace(key, std::move(view));
      return out;
    }
    case sql::Statement::Kind::kInsert: {
      XNF_ASSIGN_OR_RETURN(out.affected, ExecInsert(st, *stmt.insert));
      out.kind = RefOutcome::Kind::kAffected;
      return out;
    }
    case sql::Statement::Kind::kUpdate: {
      XNF_ASSIGN_OR_RETURN(out.affected, ExecUpdate(st, *stmt.update));
      out.kind = RefOutcome::Kind::kAffected;
      return out;
    }
    case sql::Statement::Kind::kDelete: {
      XNF_ASSIGN_OR_RETURN(out.affected, ExecDelete(st, *stmt.del));
      out.kind = RefOutcome::Kind::kAffected;
      return out;
    }
    case sql::Statement::Kind::kDrop: {
      const std::string key = ToLower(stmt.drop->name);
      if (stmt.drop->is_view) {
        if (st->views.erase(key) == 0) {
          return Status::NotFound("view '" + stmt.drop->name + "' not found");
        }
        return out;
      }
      if (st->tables.erase(key) == 0) {
        return Status::NotFound("table '" + stmt.drop->name + "' not found");
      }
      st->table_indexes.erase(key);
      st->table_order.erase(
          std::remove(st->table_order.begin(), st->table_order.end(), key),
          st->table_order.end());
      return out;
    }
    case sql::Statement::Kind::kExplain:
      // The fuzz generator never emits EXPLAIN; the engine renders plan
      // text the reference has no counterpart for.
      return Status::NotSupported("EXPLAIN is not supported by the reference");
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace

RefOutcome ExecuteSqlStatement(State* st, const std::string& text) {
  sql::Parser parser(text);
  Result<sql::Statement> parsed = parser.ParseStatement();
  if (!parsed.ok()) return RefOutcome::Error(parsed.status());
  if (!parser.AtEnd()) {
    return RefOutcome::Error(parser.MakeError("unexpected trailing input"));
  }
  Result<RefOutcome> out = DispatchSql(st, *parsed);
  if (!out.ok()) return RefOutcome::Error(out.status());
  return std::move(*out);
}

}  // namespace xnf::testing::refi
