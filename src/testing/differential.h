#ifndef XNF_TESTING_DIFFERENTIAL_H_
#define XNF_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "testing/generator.h"

namespace xnf::testing {

// One engine configuration of the differential matrix. Configurations with
// the same (use_indexes, use_rewrite) pair must produce bit-identical row
// sequences: the executed plan is the same, and parallelism/batching/CSE are
// implementation strategies that may not change observable order. Across
// groups only multiset equality (plus ORDER BY sortedness) is required.
struct EngineConfig {
  int threads = 1;
  bool scalar_eval = false;  // scalar (row-at-a-time) expression evaluation
  bool use_cse = true;       // XNF edge queries over CSE temps vs inline
  bool use_indexes = true;
  bool use_rewrite = true;
  // Default storage layout for tables created without a USING clause. NOT
  // part of PlanGroup: the storage engine (and with it the columnar kernel
  // + late-materialization scan path) must not change observable results,
  // so a columnar engine must agree bit-identically with the row engines of
  // its plan group.
  bool column_storage = false;
  // Scans hand zero-copy column batches to joins/aggregation (the PR 8
  // executor currency) vs decode-at-scan (PR 6 behaviour). NOT part of
  // PlanGroup for the same reason as column_storage; only observable on
  // columnar tables.
  bool late_materialization = true;

  // Group key for the bit-identical comparison.
  int PlanGroup() const { return (use_indexes ? 2 : 0) | (use_rewrite ? 1 : 0); }
  std::string Label() const;
};

// The default matrix: every (use_indexes, use_rewrite) plan group, crossed
// with serial/parallel execution, batch/scalar evaluation, CSE on/off, and
// row/columnar default storage (one columnar member per plan group).
std::vector<EngineConfig> DefaultMatrix();

// A detected divergence: which statement (index into the script), what the
// disagreement was, and between which parties.
struct Divergence {
  int statement = -1;          // -1 = end-of-script table-state check
  std::string statement_text;  // empty for end-of-script checks
  std::string description;
};

// Runs one script through the reference interpreter and every engine
// configuration, comparing statement-by-statement and the final base-table
// state. Returns the first divergence, or nullopt if all parties agree.
std::optional<Divergence> RunScript(const std::vector<std::string>& statements,
                                    const std::vector<EngineConfig>& configs);

// Greedily removes statements while the script still diverges. The result
// is 1-minimal: removing any single remaining statement makes the
// divergence disappear.
std::vector<std::string> MinimizeScript(
    const std::vector<std::string>& statements,
    const std::vector<EngineConfig>& configs);

struct FuzzReport {
  uint64_t seed = 0;
  bool ok = true;
  Divergence divergence;                // when !ok
  std::vector<std::string> minimized;   // minimized reproducer (when !ok)
  std::string artifact_path;            // written artifact file, if any
};

// Generates the case for `seed`, runs it, and on divergence minimizes the
// script and (if the SQLXNF_FUZZ_ARTIFACT environment variable names a file)
// writes a replayable artifact: the seed, the divergence, and the minimized
// statements.
FuzzReport RunSeed(uint64_t seed, const GenOptions& gen = GenOptions(),
                   const std::vector<EngineConfig>& configs = DefaultMatrix());

// Renders an artifact body (also used by the fuzz_runner binary).
std::string RenderArtifact(const FuzzReport& report);

}  // namespace xnf::testing

#endif  // XNF_TESTING_DIFFERENTIAL_H_
