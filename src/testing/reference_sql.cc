// Expression semantics of the reference interpreter.
//
// Two dialects are mirrored here, both evaluated naively over the AST:
//  - kSql: the engine's static pass (qgm/builder.cc) plus the runtime
//    semantics of exec/eval.cc. Statements run CheckExpr (via CheckSelect)
//    over everything first, so build-time errors fire even when no row is
//    ever evaluated — exactly like the engine, which builds the whole QGM
//    before executing.
//  - kRestricted: xnf/scalar_eval.cc (SUCH THAT predicates and CO SET
//    expressions). There is no static pass in that dialect; every error is
//    a runtime error, and the function/feature surface is much smaller.
//
// Behavioural agreement matters, shared code does not: the only engine code
// reused is the parser, Value/Schema, and qgm::BinaryResultType (a pure
// type-algebra table that both sides must agree on symbol for symbol).

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"
#include "qgm/builder.h"
#include "sql/ast.h"
#include "testing/reference_internal.h"

namespace xnf::testing::refi {
namespace {

using sql::BinOp;
using sql::Expr;
using K = sql::Expr::Kind;

Value TriboolToValue(Tribool t) {
  if (t == Tribool::kTrue) return Value::Bool(true);
  if (t == Tribool::kFalse) return Value::Bool(false);
  return Value::Null();
}

Tribool Not3(Tribool t) {
  if (t == Tribool::kTrue) return Tribool::kFalse;
  if (t == Tribool::kFalse) return Tribool::kTrue;
  return Tribool::kUnknown;
}

Result<Tribool> ToTribool(const Value& v) {
  if (v.is_null()) return Tribool::kUnknown;
  if (!v.is_bool()) {
    return Status::InvalidArgument("expected a boolean value");
  }
  return v.AsBool() ? Tribool::kTrue : Tribool::kFalse;
}

bool IsAggName(const std::string& lower) {
  return lower == "count" || lower == "sum" || lower == "avg" ||
         lower == "min" || lower == "max";
}

// Three-valued comparison shared by both dialects (both engines express
// Ne/Ge/Gt/Le through Not/swap over CompareEq/CompareLt).
Value CompareValues(BinOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinOp::kEq:
      return TriboolToValue(l.CompareEq(r));
    case BinOp::kNe:
      return TriboolToValue(Not3(l.CompareEq(r)));
    case BinOp::kLt:
      return TriboolToValue(l.CompareLt(r));
    case BinOp::kGe:
      return TriboolToValue(Not3(l.CompareLt(r)));
    case BinOp::kGt:
      return TriboolToValue(r.CompareLt(l));
    case BinOp::kLe:
      return TriboolToValue(Not3(r.CompareLt(l)));
    default:
      return Value::Null();
  }
}

// NULL-strict arithmetic; both dialects agree: int op int stays int,
// any double widens, division by zero (int or double) and non-int MOD
// operands are errors.
Result<Value> Arith(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  bool ints = l.is_int() && r.is_int();
  switch (op) {
    case BinOp::kAdd:
      return ints ? Value::Int(WrappingAdd(l.AsInt(), r.AsInt()))
                  : Value::Double(l.AsDouble() + r.AsDouble());
    case BinOp::kSub:
      return ints ? Value::Int(WrappingSub(l.AsInt(), r.AsInt()))
                  : Value::Double(l.AsDouble() - r.AsDouble());
    case BinOp::kMul:
      return ints ? Value::Int(WrappingMul(l.AsInt(), r.AsInt()))
                  : Value::Double(l.AsDouble() * r.AsDouble());
    case BinOp::kDiv:
      if (ints) {
        if (r.AsInt() == 0) {
          return Status::InvalidArgument("division by zero");
        }
        return Value::Int(l.AsInt() / r.AsInt());
      }
      if (r.AsDouble() == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      return Value::Double(l.AsDouble() / r.AsDouble());
    case BinOp::kMod:
      if (!ints) return Status::InvalidArgument("MOD requires integers");
      if (r.AsInt() == 0) return Status::InvalidArgument("division by zero");
      return Value::Int(l.AsInt() % r.AsInt());
    default:
      return Status::Internal("not arithmetic");
  }
}

// Resolved column: the scope level holding it plus the offset into that
// level's combined row.
using ColRef = ResolvedCol;

// SQL-dialect resolution mirrors qgm::Builder::ResolveColumn: qualified
// references match entry aliases (anonymous entries discriminate by their
// columns' own qualifiers), unqualified references must be unique across and
// within entries, and unresolved names fall through to the parent scope.
// Restricted-dialect resolution mirrors co::RowEvaluator::ResolveColumn:
// first alias-matching binding wins (its internal resolution errors
// propagate), and there is no parent traversal.
Result<ColRef> ResolveRef(const Scope& scope, const std::string& table,
                          const std::string& column, Dialect dialect) {
  std::string tbl = ToLower(table);
  std::string col = ToLower(column);

  if (dialect == Dialect::kRestricted) {
    const Entry* found = nullptr;
    size_t index = 0;
    for (const Entry& entry : *scope.entries) {
      if (!tbl.empty()) {
        if (entry.alias != tbl) continue;
        XNF_ASSIGN_OR_RETURN(size_t i, entry.schema.Resolve("", col));
        return ColRef{&scope, entry.offset + i,
                      entry.schema.column(i).type};
      }
      auto i = entry.schema.Find(col);
      if (!i.has_value()) continue;
      if (found != nullptr) {
        return Status::InvalidArgument("ambiguous column '" + column + "'");
      }
      found = &entry;
      index = *i;
    }
    if (found == nullptr) {
      return Status::NotFound(
          "column '" + (table.empty() ? column : table + "." + column) +
          "' not found");
    }
    return ColRef{&scope, found->offset + index,
                  found->schema.column(index).type};
  }

  const Scope* level = &scope;
  while (level != nullptr) {
    bool found = false;
    ColRef out;
    for (const Entry& entry : *level->entries) {
      if (!tbl.empty()) {
        if (!entry.alias.empty() && !EqualsIgnoreCase(entry.alias, tbl)) {
          continue;
        }
        auto idx = entry.alias.empty() ? entry.schema.Resolve(tbl, col)
                                       : entry.schema.Resolve("", col);
        if (!idx.ok()) {
          if (idx.status().code() == StatusCode::kNotFound) continue;
          return idx.status();
        }
        if (found) {
          return Status::InvalidArgument("ambiguous column '" + table + "." +
                                         column + "'");
        }
        found = true;
        out = ColRef{level, entry.offset + *idx,
                     entry.schema.column(*idx).type};
      } else {
        auto idx = entry.schema.Find(col);
        if (!idx.has_value()) continue;
        if (found) {
          return Status::InvalidArgument("ambiguous column '" + column +
                                         "'");
        }
        size_t dup = 0;
        for (const Column& c : entry.schema.columns()) {
          if (EqualsIgnoreCase(c.name, col)) ++dup;
        }
        if (dup > 1) {
          return Status::InvalidArgument("ambiguous column '" + column +
                                         "'");
        }
        found = true;
        out = ColRef{level, entry.offset + *idx,
                     entry.schema.column(*idx).type};
      }
    }
    if (found) return out;
    level = level->parent;
  }
  return Status::NotFound(
      "column '" + (table.empty() ? column : table + "." + column) +
      "' not found");
}

// Aggregate evaluation over a group: the argument is re-evaluated per group
// row by swapping the row of the group's template scope. NULL inputs are
// skipped; DISTINCT keeps first occurrences under the total order.
Result<Value> EvalAggregate(State* st, const Expr& e, const GroupCtx& group) {
  std::string name = ToLower(e.column);
  bool star = e.args.size() == 1 && e.args[0]->kind == K::kStar;
  if (name == "count" && star) {
    return Value::Int(static_cast<int64_t>(group.rows->size()));
  }
  std::vector<Value> vals;
  vals.reserve(group.rows->size());
  for (const Row* r : *group.rows) {
    Scope row_scope;
    row_scope.entries = group.scope->entries;
    row_scope.row = r;
    row_scope.parent = group.scope->parent;
    XNF_ASSIGN_OR_RETURN(
        Value v, Eval(st, *e.args[0], row_scope, Dialect::kSql, nullptr));
    if (!v.is_null()) vals.push_back(std::move(v));
  }
  if (e.distinct_arg) {
    std::vector<Value> unique;
    for (Value& v : vals) {
      bool seen = false;
      for (const Value& u : unique) {
        if (u.TotalOrderCompare(v) == 0) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(std::move(v));
    }
    vals = std::move(unique);
  }
  if (name == "count") {
    return Value::Int(static_cast<int64_t>(vals.size()));
  }
  if (vals.empty()) return Value::Null();
  if (name == "sum") {
    Value acc = vals[0];
    for (size_t i = 1; i < vals.size(); ++i) {
      if (acc.is_int() && vals[i].is_int()) {
        acc = Value::Int(WrappingAdd(acc.AsInt(), vals[i].AsInt()));
      } else {
        acc = Value::Double(acc.AsDouble() + vals[i].AsDouble());
      }
    }
    return acc;
  }
  if (name == "avg") {
    double sum = 0;
    for (const Value& v : vals) sum += v.AsDouble();
    return Value::Double(sum / static_cast<double>(vals.size()));
  }
  // min / max
  bool want_min = name == "min";
  Value best = vals[0];
  for (size_t i = 1; i < vals.size(); ++i) {
    int c = vals[i].TotalOrderCompare(best);
    if ((want_min && c < 0) || (!want_min && c > 0)) best = vals[i];
  }
  return best;
}

}  // namespace

bool ExprEq(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  auto args_eq = [&]() {
    if (a.args.size() != b.args.size()) return false;
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (!ExprEq(*a.args[i], *b.args[i])) return false;
    }
    return true;
  };
  switch (a.kind) {
    case K::kLiteral:
      return a.literal.type() == b.literal.type() &&
             a.literal.TotalOrderCompare(b.literal) == 0;
    case K::kColumnRef:
      return EqualsIgnoreCase(a.table, b.table) &&
             EqualsIgnoreCase(a.column, b.column);
    case K::kStar:
      return true;
    case K::kBinary:
      return a.bin_op == b.bin_op && args_eq();
    case K::kUnary:
      return a.un_op == b.un_op && args_eq();
    case K::kFuncCall:
      return EqualsIgnoreCase(a.column, b.column) &&
             a.distinct_arg == b.distinct_arg && args_eq();
    case K::kIsNull:
    case K::kLike:
    case K::kBetween:
    case K::kInList:
      return a.negated == b.negated && args_eq();
    case K::kCase:
      return args_eq();
    default:
      // Subqueries, paths, params: never considered structurally equal.
      return false;
  }
}

bool HasAggregate(const Expr& e) {
  if (e.kind == K::kFuncCall && IsAggName(ToLower(e.column))) return true;
  for (const sql::ExprPtr& a : e.args) {
    if (a != nullptr && HasAggregate(*a)) return true;
  }
  return false;
}

Result<Type> CheckExpr(State* st, const Expr& e, const Scope& scope,
                       const CheckOpts& opts) {
  switch (e.kind) {
    case K::kLiteral:
      return e.literal.type();
    case K::kColumnRef: {
      XNF_ASSIGN_OR_RETURN(
          ColRef c, ResolveRef(scope, e.table, e.column, Dialect::kSql));
      return c.type;
    }
    case K::kStar:
      return Status::InvalidArgument("'*' is only valid inside COUNT(*)");
    case K::kParam:
      return Type::kNull;  // builds fine; fails only if evaluated
    case K::kBinary: {
      XNF_ASSIGN_OR_RETURN(Type l, CheckExpr(st, *e.args[0], scope, opts));
      XNF_ASSIGN_OR_RETURN(Type r, CheckExpr(st, *e.args[1], scope, opts));
      return qgm::BinaryResultType(e.bin_op, l, r);
    }
    case K::kUnary: {
      XNF_ASSIGN_OR_RETURN(Type t, CheckExpr(st, *e.args[0], scope, opts));
      if (e.un_op == sql::UnOp::kNot) return Type::kBool;
      if (t != Type::kInt && t != Type::kDouble && t != Type::kNull) {
        return Status::InvalidArgument("unary '-' requires a numeric operand");
      }
      return t;
    }
    case K::kFuncCall: {
      std::string name = ToLower(e.column);
      if (IsAggName(name)) {
        if (!opts.allow_aggs) {
          return Status::InvalidArgument("aggregate '" + e.column +
                                         "' is not allowed here");
        }
        if (opts.in_aggregate) {
          return Status::InvalidArgument("nested aggregates are not allowed");
        }
        bool star = e.args.size() == 1 && e.args[0]->kind == K::kStar;
        if (star) {
          if (name != "count") {
            return Status::InvalidArgument(name + "(*) is not valid");
          }
          return Type::kInt;
        }
        if (e.args.size() != 1) {
          return Status::InvalidArgument(name +
                                         " takes exactly one argument");
        }
        CheckOpts arg_opts = opts;
        arg_opts.allow_aggs = false;
        arg_opts.in_aggregate = true;
        XNF_ASSIGN_OR_RETURN(Type at,
                             CheckExpr(st, *e.args[0], scope, arg_opts));
        if (name == "count") return Type::kInt;
        if (name == "sum") {
          return at == Type::kDouble ? Type::kDouble : Type::kInt;
        }
        if (name == "avg") return Type::kDouble;
        return at;  // min / max
      }
      std::vector<Type> arg_types;
      for (const sql::ExprPtr& a : e.args) {
        XNF_ASSIGN_OR_RETURN(Type t, CheckExpr(st, *a, scope, opts));
        arg_types.push_back(t);
      }
      auto arity = [&](size_t n) -> Status {
        if (arg_types.size() != n) {
          return Status::InvalidArgument(name + " takes " +
                                         std::to_string(n) + " argument(s)");
        }
        return Status::Ok();
      };
      if (name == "abs") {
        XNF_RETURN_IF_ERROR(arity(1));
        return arg_types[0] == Type::kNull ? Type::kInt : arg_types[0];
      }
      if (name == "floor" || name == "ceil" || name == "round") {
        XNF_RETURN_IF_ERROR(arity(1));
        return Type::kInt;
      }
      if (name == "mod") {
        XNF_RETURN_IF_ERROR(arity(2));
        return Type::kInt;
      }
      if (name == "lower" || name == "upper" || name == "trim") {
        XNF_RETURN_IF_ERROR(arity(1));
        return Type::kString;
      }
      if (name == "length") {
        XNF_RETURN_IF_ERROR(arity(1));
        return Type::kInt;
      }
      if (name == "substr") {
        if (arg_types.size() != 2 && arg_types.size() != 3) {
          return Status::InvalidArgument("substr takes 2 or 3 arguments");
        }
        return Type::kString;
      }
      if (name == "coalesce") {
        if (arg_types.empty()) {
          return Status::InvalidArgument("coalesce needs arguments");
        }
        Type t = Type::kNull;
        for (Type at : arg_types) {
          if (t == Type::kNull) {
            t = at;
          } else if (at != Type::kNull && at != t) {
            if ((t == Type::kInt || t == Type::kDouble) &&
                (at == Type::kInt || at == Type::kDouble)) {
              t = Type::kDouble;
            } else {
              return Status::InvalidArgument(
                  "coalesce arguments have mixed types");
            }
          }
        }
        return t;
      }
      return Status::NotFound("unknown function '" + name + "'");
    }
    case K::kIsNull: {
      XNF_RETURN_IF_ERROR(CheckExpr(st, *e.args[0], scope, opts).status());
      return Type::kBool;
    }
    case K::kLike: {
      XNF_RETURN_IF_ERROR(CheckExpr(st, *e.args[0], scope, opts).status());
      XNF_RETURN_IF_ERROR(CheckExpr(st, *e.args[1], scope, opts).status());
      return Type::kBool;
    }
    case K::kBetween: {
      XNF_ASSIGN_OR_RETURN(Type a, CheckExpr(st, *e.args[0], scope, opts));
      XNF_ASSIGN_OR_RETURN(Type lo, CheckExpr(st, *e.args[1], scope, opts));
      XNF_ASSIGN_OR_RETURN(Type hi, CheckExpr(st, *e.args[2], scope, opts));
      XNF_RETURN_IF_ERROR(
          qgm::BinaryResultType(BinOp::kGe, a, lo).status());
      XNF_RETURN_IF_ERROR(
          qgm::BinaryResultType(BinOp::kLe, a, hi).status());
      return Type::kBool;
    }
    case K::kInList: {
      for (const sql::ExprPtr& a : e.args) {
        XNF_RETURN_IF_ERROR(CheckExpr(st, *a, scope, opts).status());
      }
      return Type::kBool;
    }
    case K::kInSubquery:
    case K::kExistsSubquery:
    case K::kScalarSubquery: {
      if (!opts.allow_subqueries) {
        return Status::NotSupported("subqueries are not supported here");
      }
      if (e.kind == K::kInSubquery) {
        XNF_RETURN_IF_ERROR(CheckExpr(st, *e.args[0], scope, opts).status());
      }
      XNF_ASSIGN_OR_RETURN(SelectShape sub,
                           CheckSelect(st, *e.subquery, &scope));
      if (e.kind != K::kExistsSubquery && sub.types.size() != 1) {
        return Status::InvalidArgument(
            "subquery must return exactly one column");
      }
      if (e.kind == K::kScalarSubquery) return sub.types[0];
      return Type::kBool;
    }
    case K::kCase: {
      Type result = Type::kNull;
      size_t n = e.args.size();
      bool has_else = n % 2 == 1;
      size_t pairs = n / 2;
      for (size_t i = 0; i < pairs; ++i) {
        XNF_RETURN_IF_ERROR(
            CheckExpr(st, *e.args[2 * i], scope, opts).status());
        XNF_ASSIGN_OR_RETURN(Type then,
                             CheckExpr(st, *e.args[2 * i + 1], scope, opts));
        if (result == Type::kNull) result = then;
      }
      if (has_else) {
        XNF_ASSIGN_OR_RETURN(Type els,
                             CheckExpr(st, *e.args[n - 1], scope, opts));
        if (result == Type::kNull) result = els;
      }
      return result;
    }
    case K::kPath:
    case K::kExistsPath:
      return Status::InvalidArgument(
          "path expressions are only valid in XNF contexts");
  }
  return Status::Internal("unhandled expression kind in CheckExpr");
}

Result<Value> Eval(State* st, const Expr& e, const Scope& scope,
                   Dialect dialect, const GroupCtx* group) {
  bool restricted = dialect == Dialect::kRestricted;
  switch (e.kind) {
    case K::kLiteral:
      return e.literal;
    case K::kColumnRef: {
      XNF_ASSIGN_OR_RETURN(
          ColRef c, ResolveRef(scope, e.table, e.column, dialect));
      return (*c.level->row)[c.offset];
    }
    case K::kBinary: {
      if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
        XNF_ASSIGN_OR_RETURN(Value lv,
                             Eval(st, *e.args[0], scope, dialect, group));
        XNF_ASSIGN_OR_RETURN(Tribool l, ToTribool(lv));
        if (e.bin_op == BinOp::kAnd && l == Tribool::kFalse) {
          return Value::Bool(false);
        }
        if (e.bin_op == BinOp::kOr && l == Tribool::kTrue) {
          return Value::Bool(true);
        }
        XNF_ASSIGN_OR_RETURN(Value rv,
                             Eval(st, *e.args[1], scope, dialect, group));
        XNF_ASSIGN_OR_RETURN(Tribool r, ToTribool(rv));
        if (e.bin_op == BinOp::kAnd) {
          if (l == Tribool::kTrue && r == Tribool::kTrue) {
            return Value::Bool(true);
          }
          if (r == Tribool::kFalse) return Value::Bool(false);
          return Value::Null();
        }
        if (l == Tribool::kFalse && r == Tribool::kFalse) {
          return Value::Bool(false);
        }
        if (r == Tribool::kTrue) return Value::Bool(true);
        return Value::Null();
      }
      XNF_ASSIGN_OR_RETURN(Value l, Eval(st, *e.args[0], scope, dialect,
                                         group));
      XNF_ASSIGN_OR_RETURN(Value r, Eval(st, *e.args[1], scope, dialect,
                                         group));
      switch (e.bin_op) {
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
          return CompareValues(e.bin_op, l, r);
        case BinOp::kConcat:
          if (l.is_null() || r.is_null()) return Value::Null();
          if (!l.is_string() || !r.is_string()) {
            return Status::InvalidArgument("|| requires strings");
          }
          return Value::String(l.AsString() + r.AsString());
        default:
          return Arith(e.bin_op, l, r);
      }
    }
    case K::kUnary: {
      XNF_ASSIGN_OR_RETURN(Value v, Eval(st, *e.args[0], scope, dialect,
                                         group));
      if (e.un_op == sql::UnOp::kNot) {
        XNF_ASSIGN_OR_RETURN(Tribool t, ToTribool(v));
        return TriboolToValue(Not3(t));
      }
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_double()) return Value::Double(-v.AsDouble());
      return Status::InvalidArgument("unary '-' on non-numeric value");
    }
    case K::kIsNull: {
      XNF_ASSIGN_OR_RETURN(Value v, Eval(st, *e.args[0], scope, dialect,
                                         group));
      bool is_null = v.is_null();
      return Value::Bool(e.negated ? !is_null : is_null);
    }
    case K::kLike: {
      XNF_ASSIGN_OR_RETURN(Value text, Eval(st, *e.args[0], scope, dialect,
                                            group));
      XNF_ASSIGN_OR_RETURN(Value pattern, Eval(st, *e.args[1], scope,
                                               dialect, group));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (!text.is_string() || !pattern.is_string()) {
        return Status::InvalidArgument("LIKE requires strings");
      }
      bool m = LikeMatch(text.AsString(), pattern.AsString());
      return Value::Bool(e.negated ? !m : m);
    }
    case K::kBetween: {
      XNF_ASSIGN_OR_RETURN(Value a, Eval(st, *e.args[0], scope, dialect,
                                         group));
      XNF_ASSIGN_OR_RETURN(Value lo, Eval(st, *e.args[1], scope, dialect,
                                          group));
      XNF_ASSIGN_OR_RETURN(Value hi, Eval(st, *e.args[2], scope, dialect,
                                          group));
      Tribool ge = Not3(a.CompareLt(lo));
      Tribool le = Not3(hi.CompareLt(a));
      Tribool both = (ge == Tribool::kTrue && le == Tribool::kTrue)
                         ? Tribool::kTrue
                         : ((ge == Tribool::kFalse || le == Tribool::kFalse)
                                ? Tribool::kFalse
                                : Tribool::kUnknown);
      if (e.negated) both = Not3(both);
      return TriboolToValue(both);
    }
    case K::kInList: {
      XNF_ASSIGN_OR_RETURN(Value v, Eval(st, *e.args[0], scope, dialect,
                                         group));
      Tribool acc = Tribool::kFalse;
      for (size_t i = 1; i < e.args.size(); ++i) {
        XNF_ASSIGN_OR_RETURN(Value item, Eval(st, *e.args[i], scope, dialect,
                                              group));
        Tribool eq = v.CompareEq(item);
        if (eq == Tribool::kTrue) {
          acc = Tribool::kTrue;
          break;
        }
        if (eq == Tribool::kUnknown) acc = Tribool::kUnknown;
      }
      if (e.negated) acc = Not3(acc);
      return TriboolToValue(acc);
    }
    case K::kCase: {
      size_t n = e.args.size();
      bool has_else = n % 2 == 1;
      size_t pairs = n / 2;
      for (size_t i = 0; i < pairs; ++i) {
        XNF_ASSIGN_OR_RETURN(Value cond, Eval(st, *e.args[2 * i], scope,
                                              dialect, group));
        Tribool t = cond.is_null()
                        ? Tribool::kUnknown
                        : (cond.is_bool() && cond.AsBool() ? Tribool::kTrue
                                                           : Tribool::kFalse);
        if (t == Tribool::kTrue) {
          return Eval(st, *e.args[2 * i + 1], scope, dialect, group);
        }
      }
      if (has_else) return Eval(st, *e.args[n - 1], scope, dialect, group);
      return Value::Null();
    }
    case K::kFuncCall: {
      std::string name = ToLower(e.column);
      if (!restricted && IsAggName(name)) {
        if (group == nullptr) {
          return Status::InvalidArgument("aggregate '" + e.column +
                                         "' is not allowed here");
        }
        return EvalAggregate(st, e, *group);
      }
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const sql::ExprPtr& a : e.args) {
        XNF_ASSIGN_OR_RETURN(Value v, Eval(st, *a, scope, dialect, group));
        args.push_back(std::move(v));
      }
      if (restricted) {
        // scalar_eval.cc: NULL-strict before dispatch, tiny function set.
        for (const Value& a : args) {
          if (a.is_null()) return Value::Null();
        }
        if (name == "abs") {
          if (args.size() != 1) {
            return Status::InvalidArgument("abs takes one argument");
          }
          if (args[0].is_int()) return Value::Int(std::llabs(args[0].AsInt()));
          if (args[0].is_double()) {
            return Value::Double(std::fabs(args[0].AsDouble()));
          }
          return Status::InvalidArgument("abs on non-numeric value");
        }
        if (name == "lower" && args.size() == 1 && args[0].is_string()) {
          return Value::String(ToLower(args[0].AsString()));
        }
        if (name == "upper" && args.size() == 1 && args[0].is_string()) {
          std::string s = args[0].AsString();
          for (char& c : s) {
            c = static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
          }
          return Value::String(std::move(s));
        }
        if (name == "length" && args.size() == 1 && args[0].is_string()) {
          return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
        }
        if (name == "mod" && args.size() == 2) {
          if (!args[0].is_int() || !args[1].is_int() ||
              args[1].AsInt() == 0) {
            return Status::InvalidArgument("invalid MOD operands");
          }
          return Value::Int(args[0].AsInt() % args[1].AsInt());
        }
        return Status::NotSupported("function '" + name +
                                    "' is not supported in this context");
      }
      // SQL dialect (exec/eval.cc ApplyFunction).
      if (name == "coalesce") {
        for (Value& a : args) {
          if (!a.is_null()) return std::move(a);
        }
        return Value::Null();
      }
      for (const Value& a : args) {
        if (a.is_null()) return Value::Null();
      }
      if (name == "abs") {
        if (args[0].is_int()) return Value::Int(std::llabs(args[0].AsInt()));
        if (args[0].is_double()) {
          return Value::Double(std::fabs(args[0].AsDouble()));
        }
        return Status::InvalidArgument("abs on non-numeric value");
      }
      if (name == "mod") return Arith(BinOp::kMod, args[0], args[1]);
      if (name == "floor" || name == "ceil" || name == "round") {
        if (!args[0].is_numeric()) {
          return Status::InvalidArgument(name + " on non-numeric value");
        }
        double d = args[0].AsDouble();
        if (name == "floor") {
          return Value::Int(static_cast<int64_t>(std::floor(d)));
        }
        if (name == "ceil") {
          return Value::Int(static_cast<int64_t>(std::ceil(d)));
        }
        return Value::Int(static_cast<int64_t>(std::llround(d)));
      }
      if (name == "lower" || name == "upper" || name == "trim" ||
          name == "length" || name == "substr") {
        if (!args[0].is_string()) {
          return Status::InvalidArgument(name + " on non-string value");
        }
        if (name == "lower") return Value::String(ToLower(args[0].AsString()));
        if (name == "upper") {
          std::string s = args[0].AsString();
          for (char& c : s) {
            c = static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
          }
          return Value::String(std::move(s));
        }
        if (name == "trim") {
          const std::string& s = args[0].AsString();
          size_t b = s.find_first_not_of(" \t\n\r");
          size_t en = s.find_last_not_of(" \t\n\r");
          if (b == std::string::npos) return Value::String("");
          return Value::String(s.substr(b, en - b + 1));
        }
        if (name == "length") {
          return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
        }
        const std::string& s = args[0].AsString();
        int64_t start = args[1].AsInt();  // 1-based
        if (start < 1) start = 1;
        size_t from = static_cast<size_t>(start - 1);
        if (from >= s.size()) return Value::String("");
        size_t len = args.size() == 3
                         ? static_cast<size_t>(
                               std::max<int64_t>(0, args[2].AsInt()))
                         : std::string::npos;
        return Value::String(s.substr(from, len));
      }
      return Status::NotFound("unknown function '" + name + "'");
    }
    case K::kInSubquery:
    case K::kExistsSubquery:
    case K::kScalarSubquery: {
      if (restricted) {
        return Status::NotSupported(
            "SQL subqueries and parameters are not supported in SUCH THAT "
            "predicates");
      }
      XNF_ASSIGN_OR_RETURN(SelectOut sub, EvalSelect(st, *e.subquery,
                                                     &scope));
      if (e.kind == K::kExistsSubquery) {
        bool exists = !sub.rows.empty();
        return Value::Bool(e.negated ? !exists : exists);
      }
      if (e.kind == K::kScalarSubquery) {
        if (sub.rows.empty()) return Value::Null();
        if (sub.rows.size() > 1) {
          return Status::InvalidArgument(
              "scalar subquery returned more than one row");
        }
        return sub.rows[0][0];
      }
      XNF_ASSIGN_OR_RETURN(Value v, Eval(st, *e.args[0], scope, dialect,
                                         group));
      Tribool acc = Tribool::kFalse;
      for (const Row& r : sub.rows) {
        Tribool eq = v.CompareEq(r[0]);
        if (eq == Tribool::kTrue) {
          acc = Tribool::kTrue;
          break;
        }
        if (eq == Tribool::kUnknown) acc = Tribool::kUnknown;
      }
      if (e.negated) acc = Not3(acc);
      return TriboolToValue(acc);
    }
    case K::kStar:
    case K::kParam:
      if (restricted) {
        return Status::NotSupported(
            "SQL subqueries and parameters are not supported in SUCH THAT "
            "predicates");
      }
      return Status::InvalidArgument(
          e.kind == K::kStar ? "'*' is only valid inside COUNT(*)"
                             : "unbound statement parameter");
    case K::kPath:
    case K::kExistsPath:
      return Status::NotSupported(
          "path expressions are not available in this context");
  }
  return Status::Internal("unhandled expression kind in Eval");
}

Result<bool> EvalPred(State* st, const Expr& e, const Scope& scope,
                      Dialect dialect, const GroupCtx* group) {
  XNF_ASSIGN_OR_RETURN(Value v, Eval(st, e, scope, dialect, group));
  if (v.is_null()) return false;
  if (!v.is_bool()) {
    return Status::InvalidArgument("predicate did not evaluate to a boolean");
  }
  return v.AsBool();
}

Result<ResolvedCol> ResolveColumn(const Scope& scope, const std::string& table,
                                  const std::string& column,
                                  Dialect dialect) {
  return ResolveRef(scope, table, column, dialect);
}

}  // namespace xnf::testing::refi
