#ifndef XNF_TESTING_REFERENCE_INTERNAL_H_
#define XNF_TESTING_REFERENCE_INTERNAL_H_

// Shared internals of the reference interpreter. Split across
// reference_sql.cc (SQL statements + expression dialects) and
// reference_xnf.cc (composite-object pipeline); nothing here is part of the
// public testing API.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"
#include "testing/reference.h"
#include "xnf/ast.h"
#include "xnf/instance.h"

namespace xnf::testing::refi {

// ----------------------------------------------------------------- catalog

struct RefTable {
  Schema schema;              // qualifiers set to the table name
  std::vector<Row> rows;
  std::vector<int64_t> rids;  // stable per-row ids for write-through
  int64_t next_rid = 0;
};

struct RefView {
  bool is_xnf = false;
  std::string definition;  // body text after AS
  // XNF views keep the parsed query; whether it is structurally composable
  // (splice-able) is re-derived from it: no restrictions and TAKE *.
  std::shared_ptr<co::XnfQuery> xnf;
};

struct State {
  std::map<std::string, RefTable> tables;  // lowercase name -> table
  std::vector<std::string> table_order;    // creation order
  std::map<std::string, RefView> views;    // lowercase name -> view
  // Index names per table (lowercase). Index-name uniqueness is scoped to
  // the table, like the engine's per-table index list; tables with a primary
  // key start out with the implicit "<table>_pk" entry.
  std::map<std::string, std::set<std::string>> table_indexes;
};

// ------------------------------------------------------- composite objects

// Reference CO model. Tuple identity is the vector index; rids are parallel
// to tuples when the node is updatable.
struct RefNode {
  std::string name;
  Schema schema;  // qualifiers set to the node name
  std::vector<Row> tuples;
  std::vector<int64_t> rids;
  std::string base_table;
  std::vector<int> base_column_map;  // node column -> base table column
  bool updatable() const { return !base_table.empty(); }
};

struct RefConn {
  int parent = -1;
  int child = -1;
  Row attrs;
};

struct RefRel {
  std::string name;
  int parent_node = -1;
  int child_node = -1;
  std::vector<std::string> attr_names;
  std::vector<RefConn> conns;
  co::CoRelInstance::WriteKind write_kind =
      co::CoRelInstance::WriteKind::kNone;
  int fk_parent_column = -1;  // node-schema indices
  int fk_child_column = -1;
  std::string link_table;
  int link_parent_column = -1;  // link-table schema indices
  int link_child_column = -1;
  int parent_key_column = -1;  // node-schema indices
  int child_key_column = -1;
};

struct RefCo {
  std::vector<RefNode> nodes;
  std::vector<RefRel> rels;
  int NodeIndex(const std::string& name) const;
  int RelIndex(const std::string& name) const;
};

// ------------------------------------------------------------- name scopes

// One FROM source (or restriction binding). `alias` is "" for anonymous
// entries (left-join outputs), whose schema column qualifiers discriminate
// qualified references instead. `offset` locates the entry's columns inside
// the scope's combined row.
struct Entry {
  std::string alias;  // lowercase; "" = anonymous
  Schema schema;
  size_t offset = 0;
};

struct Scope {
  const std::vector<Entry>* entries = nullptr;
  const Row* row = nullptr;  // null during static checking
  const Scope* parent = nullptr;
};

// Expression dialects: the full SQL dialect (exec/eval.cc) vs the restricted
// SUCH THAT / CO SET dialect (xnf/scalar_eval.cc): no subqueries, functions
// limited to abs/lower/upper/length/mod, no static type pass.
enum class Dialect { kSql, kRestricted };

// Aggregate context: when set, aggregate function calls evaluate over the
// group's rows; otherwise they are an error.
struct GroupCtx {
  const std::vector<const Row*>* rows = nullptr;
  const Scope* scope = nullptr;  // template scope; row swapped per group row
};

// --------------------------------------------------------- SQL entry points

// Scalar expression evaluation (runtime semantics of exec/eval.cc or
// xnf/scalar_eval.cc depending on `dialect`).
Result<Value> Eval(State* st, const sql::Expr& e, const Scope& scope,
                   Dialect dialect, const GroupCtx* group);

// SQL predicate evaluation: NULL -> false, non-bool -> InvalidArgument.
Result<bool> EvalPred(State* st, const sql::Expr& e, const Scope& scope,
                      Dialect dialect, const GroupCtx* group);

// Static type check mirroring qgm/builder.cc. `allow_subqueries=false`
// mirrors BuildScalar (DML expressions). Restricted-dialect expressions are
// never statically checked (scalar_eval.cc has no static pass).
struct CheckOpts {
  bool allow_aggs = false;
  bool allow_subqueries = true;
  bool in_aggregate = false;
};
Result<Type> CheckExpr(State* st, const sql::Expr& e, const Scope& scope,
                       const CheckOpts& opts);

// Structural expression equality (mirrors qgm ExprEquals over the AST):
// drives GROUP BY validation and ORDER BY key matching.
bool ExprEq(const sql::Expr& a, const sql::Expr& b);

// Resolved column reference: the scope level holding it (pointer identity)
// plus the offset into that level's combined row. Exposed so the SELECT
// pipeline can match column references against group keys and star-expanded
// head columns the way the engine compares InputRefs.
struct ResolvedCol {
  const Scope* level = nullptr;
  size_t offset = 0;
  Type type = Type::kNull;
};
Result<ResolvedCol> ResolveColumn(const Scope& scope, const std::string& table,
                                  const std::string& column, Dialect dialect);

// True iff the expression contains an aggregate call, not descending into
// subquery bodies (their aggregates belong to the inner query).
bool HasAggregate(const sql::Expr& e);

// Static validation of a full SELECT chain; returns the merged head shape
// (used for subquery checking inside CheckExpr).
struct SelectShape {
  std::vector<std::string> names;
  std::vector<Type> types;
};
Result<SelectShape> CheckSelect(State* st, const sql::SelectStmt& stmt,
                                const Scope* parent);

struct SelectOut {
  std::vector<std::string> names;  // head names (lowercase)
  std::vector<Type> types;
  std::vector<Row> rows;
  std::vector<std::pair<int, bool>> order_keys;  // head positions only
  bool full_order = false;
};

// Static check + naive evaluation of a SELECT (including set-op chains).
// `parent` enables correlated subqueries; top-level calls pass null.
Result<SelectOut> EvalSelect(State* st, const sql::SelectStmt& stmt,
                             const Scope* parent);

// Statement execution (SQL side): DDL, DML, SELECT.
RefOutcome ExecuteSqlStatement(State* st, const std::string& text);

// Statement execution (XNF side): OUT OF ... TAKE/UPDATE/DELETE.
RefOutcome ExecuteXnfStatement(State* st, const std::string& text);

// CREATE VIEW ... AS OUT OF ... validation + registration (lives with the
// XNF code but is dispatched from the SQL statement path).
Status CreateXnfView(State* st, const std::string& name,
                     const std::string& definition);

// Evaluates a parsed XNF query to a materialized, restricted, taken RefCo.
Result<RefCo> EvaluateCo(State* st, const co::XnfQuery& query);

// Canonical rendering shared by RefCo and engine CoInstance comparison.
std::string RenderCanonicalCo(const RefCo& co);

// True iff the select is a "simple" node derivation per the engine's
// AnalyzeSimpleNode (xnf/evaluator.cc): single base-table FROM, plain WHERE,
// bare-column or lone-star items, no distinct/group/order/limit/set-ops.
bool IsSimpleNodeQuery(State* st, const sql::SelectStmt& stmt);

}  // namespace xnf::testing::refi

#endif  // XNF_TESTING_REFERENCE_INTERNAL_H_
