#ifndef XNF_TESTING_GENERATOR_H_
#define XNF_TESTING_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xnf::testing {

// Tuning knobs for the grammar-driven statement generator. The defaults are
// sized so one case runs in well under a second through the whole
// configuration matrix.
struct GenOptions {
  int tables = 3;           // base tables t0..t{n-1} (clamped to [2, 4])
  int link_tables = 1;      // l{i}_{i+1} link tables (clamped to tables - 1)
  int rows_per_table = 24;  // initial data volume per table
  int statements = 14;      // random statements after the schema/data prologue
  bool enable_xnf = true;   // XNF TAKE queries and CO UPDATE/DELETE
  bool enable_dml = true;   // INSERT/UPDATE/DELETE
  bool enable_ddl = true;   // mid-script CREATE INDEX / CREATE VIEW
};

// One generated script: a deterministic schema/data prologue followed by
// random statements. Statements are plain SQL/XNF text — the differential
// harness re-parses them when it needs ORDER BY metadata, so scripts are
// fully self-contained and replayable from an artifact file.
struct FuzzCase {
  std::vector<std::string> statements;
};

// Deterministically generates a case from a seed: same (seed, options) ->
// same statements on every platform. Randomness comes from an internal
// splitmix64 stream, not from <random> distribution templates (whose output
// is implementation-defined).
FuzzCase GenerateCase(uint64_t seed, const GenOptions& options = GenOptions());

}  // namespace xnf::testing

#endif  // XNF_TESTING_GENERATOR_H_
