// Differential harness: one script, one reference interpretation, N engine
// configurations; any disagreement is a bug in one of them.
//
// Comparison policy (see ISSUE/DESIGN):
//   - Status agreement is boolean: all parties succeed or all fail. Error
//     texts are free-form and never compared.
//   - Row results compare as multisets against the reference (row order is
//     only contractual under ORDER BY). When the statement has ORDER BY,
//     every engine's sequence must additionally be sorted on the keys; when
//     the keys cover the whole select list the sequence itself is compared
//     (ties are then full duplicates, so stability cannot matter).
//   - Engines in the same (use_indexes, use_rewrite) plan group must agree
//     bit-identically including order: parallelism, batching, and CSE are
//     not allowed to change observable results.
//   - Affected counts compare exactly; composite objects compare through the
//     canonical order-insensitive rendering.
//   - After the script, every base table is drained with SELECT * and
//     compared against the reference state, so silent write-path corruption
//     surfaces even when no later statement reads the table.

#include "testing/differential.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "api/database.h"
#include "common/value.h"
#include "testing/reference.h"

namespace xnf::testing {
namespace {

std::vector<std::string> RenderRows(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(RowToString(r));
  return out;
}

std::string Preview(const std::vector<std::string>& rendered, size_t limit = 4) {
  std::ostringstream os;
  os << "[" << rendered.size() << " rows";
  for (size_t i = 0; i < rendered.size() && i < limit; ++i) {
    os << (i == 0 ? ": " : ", ") << rendered[i];
  }
  if (rendered.size() > limit) os << ", ...";
  os << "]";
  return os.str();
}

bool SortedByKeys(const std::vector<Row>& rows,
                  const std::vector<std::pair<int, bool>>& keys) {
  for (size_t i = 1; i < rows.size(); ++i) {
    for (const auto& [pos, asc] : keys) {
      if (pos < 0 || static_cast<size_t>(pos) >= rows[i].size()) return false;
      int c = rows[i - 1][pos].TotalOrderCompare(rows[i][pos]);
      if (!asc) c = -c;
      if (c < 0) break;
      if (c > 0) return false;
    }
  }
  return true;
}

// Outcome of one statement on one engine, reduced to comparable form.
struct EngineOut {
  bool ok = true;
  std::string error;
  ExecResult::Kind kind = ExecResult::Kind::kNone;
  std::vector<Row> rows;
  std::vector<std::string> rendered;  // RowToString per row, same order
  int64_t affected = 0;
  std::string co_canonical;
};

EngineOut RunOnEngine(Database* db, const std::string& stmt) {
  EngineOut out;
  Result<ExecResult> r = db->Execute(stmt);
  if (!r.ok()) {
    out.ok = false;
    out.error = r.status().ToString();
    return out;
  }
  out.kind = r->kind;
  switch (r->kind) {
    case ExecResult::Kind::kRows:
      out.rows = std::move(r->rows.rows);
      out.rendered = RenderRows(out.rows);
      break;
    case ExecResult::Kind::kAffected:
      out.affected = r->affected;
      break;
    case ExecResult::Kind::kCo:
      out.co_canonical = ReferenceEngine::Canonicalize(r->co);
      break;
    case ExecResult::Kind::kNone:
      break;
  }
  return out;
}

const char* KindName(ExecResult::Kind k) {
  switch (k) {
    case ExecResult::Kind::kNone: return "none";
    case ExecResult::Kind::kRows: return "rows";
    case ExecResult::Kind::kAffected: return "affected";
    case ExecResult::Kind::kCo: return "co";
  }
  return "?";
}

const char* KindName(RefOutcome::Kind k) {
  switch (k) {
    case RefOutcome::Kind::kNone: return "none";
    case RefOutcome::Kind::kRows: return "rows";
    case RefOutcome::Kind::kAffected: return "affected";
    case RefOutcome::Kind::kCo: return "co";
  }
  return "?";
}

bool SameKind(RefOutcome::Kind ref, ExecResult::Kind eng) {
  switch (ref) {
    case RefOutcome::Kind::kNone: return eng == ExecResult::Kind::kNone;
    case RefOutcome::Kind::kRows: return eng == ExecResult::Kind::kRows;
    case RefOutcome::Kind::kAffected:
      return eng == ExecResult::Kind::kAffected;
    case RefOutcome::Kind::kCo: return eng == ExecResult::Kind::kCo;
  }
  return false;
}

// Compares one statement's outcomes. Returns a description or "".
std::string CompareStatement(const RefOutcome& ref,
                             const std::vector<EngineConfig>& configs,
                             const std::vector<EngineOut>& outs) {
  for (size_t i = 0; i < outs.size(); ++i) {
    if (outs[i].ok != ref.ok) {
      std::ostringstream os;
      os << "status disagreement: reference "
         << (ref.ok ? "succeeded" : "failed (" + ref.error + ")") << ", "
         << configs[i].Label() << " "
         << (outs[i].ok ? "succeeded" : "failed (" + outs[i].error + ")");
      return os.str();
    }
  }
  if (!ref.ok) return "";  // everyone failed; messages are not compared

  for (size_t i = 0; i < outs.size(); ++i) {
    if (!SameKind(ref.kind, outs[i].kind)) {
      std::ostringstream os;
      os << "result-kind disagreement: reference " << KindName(ref.kind)
         << ", " << configs[i].Label() << " " << KindName(outs[i].kind);
      return os.str();
    }
  }

  switch (ref.kind) {
    case RefOutcome::Kind::kNone:
      return "";
    case RefOutcome::Kind::kAffected: {
      for (size_t i = 0; i < outs.size(); ++i) {
        if (outs[i].affected != ref.affected) {
          std::ostringstream os;
          os << "affected-count disagreement: reference " << ref.affected
             << ", " << configs[i].Label() << " " << outs[i].affected;
          return os.str();
        }
      }
      return "";
    }
    case RefOutcome::Kind::kCo: {
      for (size_t i = 0; i < outs.size(); ++i) {
        if (outs[i].co_canonical != ref.co_canonical) {
          std::ostringstream os;
          os << "composite-object disagreement with " << configs[i].Label()
             << ": reference <<" << ref.co_canonical << ">> vs engine <<"
             << outs[i].co_canonical << ">>";
          return os.str();
        }
      }
      return "";
    }
    case RefOutcome::Kind::kRows:
      break;
  }

  std::vector<std::string> ref_sorted = RenderRows(ref.rows);
  std::sort(ref_sorted.begin(), ref_sorted.end());
  for (size_t i = 0; i < outs.size(); ++i) {
    std::vector<std::string> got = outs[i].rendered;
    std::sort(got.begin(), got.end());
    if (got != ref_sorted) {
      std::ostringstream os;
      os << "row-multiset disagreement with " << configs[i].Label()
         << ": reference " << Preview(ref_sorted) << " vs engine "
         << Preview(got);
      return os.str();
    }
    if (!ref.order_keys.empty()) {
      if (ref.full_order) {
        // Keys cover the select list: sequences must match outright.
        std::vector<std::string> ref_seq = RenderRows(ref.rows);
        if (outs[i].rendered != ref_seq) {
          std::ostringstream os;
          os << "ORDER BY sequence disagreement with " << configs[i].Label()
             << ": reference " << Preview(ref_seq) << " vs engine "
             << Preview(outs[i].rendered);
          return os.str();
        }
      } else if (!SortedByKeys(outs[i].rows, ref.order_keys)) {
        std::ostringstream os;
        os << "ORDER BY violation: " << configs[i].Label()
           << " output is not sorted on the statement's keys: "
           << Preview(outs[i].rendered, 8);
        return os.str();
      }
    }
  }

  // Same plan group -> bit-identical sequences.
  for (size_t i = 0; i < outs.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (configs[i].PlanGroup() != configs[j].PlanGroup()) continue;
      if (outs[i].rendered != outs[j].rendered) {
        std::ostringstream os;
        os << "plan-group determinism violation: " << configs[j].Label()
           << " " << Preview(outs[j].rendered) << " vs " << configs[i].Label()
           << " " << Preview(outs[i].rendered);
        return os.str();
      }
      break;  // comparing against the group's first member is enough
    }
  }
  return "";
}

}  // namespace

std::string EngineConfig::Label() const {
  std::ostringstream os;
  os << "dop" << threads << (scalar_eval ? "-scalar" : "-batch")
     << (use_cse ? "-cse" : "-nocse") << (use_indexes ? "-idx" : "-noidx")
     << (use_rewrite ? "-rw" : "-norw")
     << (column_storage ? "-col" : "-row")
     << (late_materialization ? "" : "-eager");
  return os.str();
}

std::vector<EngineConfig> DefaultMatrix() {
  // threads, scalar_eval, use_cse, use_indexes, use_rewrite, column_storage,
  // late_materialization
  return {
      {1, true, true, true, true, false, true},     // group A: serial scalar
      {1, false, true, true, true, false, true},    // group A: serial batch
      {2, false, true, true, true, false, true},    // group A: parallel
      {8, false, false, true, true, false, true},   // group A: wide, no CSE
      {1, false, true, true, true, true, true},     // group A: columnar
      {2, false, true, true, true, true, false},    // group A: columnar,
                                                    //   decode-at-scan
      {1, false, true, false, true, false, true},   // group B: no index paths
      {4, false, false, false, true, false, true},  // group B: parallel,
                                                    //   no CSE
      {4, false, true, false, true, true, true},    // group B: columnar
                                                    //   parallel
      {1, false, true, true, false, false, true},   // group C: no rewrite
      {1, false, true, true, false, true, true},    // group C: columnar
      {2, false, false, false, false, false, true}, // group D: bare plans
      {2, false, false, false, false, true, true},  // group D: columnar
      {4, false, false, false, false, true, false}, // group D: columnar
                                                    //   decode-at-scan
  };
}

std::optional<Divergence> RunScript(const std::vector<std::string>& statements,
                                    const std::vector<EngineConfig>& configs) {
  ReferenceEngine ref;
  std::vector<std::unique_ptr<Database>> engines;
  engines.reserve(configs.size());
  for (const EngineConfig& c : configs) {
    Database::Options opt;
    opt.threads = c.threads;
    opt.use_indexes = c.use_indexes;
    opt.use_rewrite = c.use_rewrite;
    opt.scalar_eval = c.scalar_eval;
    opt.late_materialization = c.late_materialization;
    // Pin the layout explicitly so a SQLXNF_STORAGE environment override
    // (the columnar CI lane) can never skew the matrix.
    opt.default_storage =
        c.column_storage ? StorageKind::kColumn : StorageKind::kRow;
    auto db = std::make_unique<Database>(opt);
    co::Evaluator::Options xnf;
    xnf.use_cse = c.use_cse;
    db->set_xnf_options(xnf);
    engines.push_back(std::move(db));
  }

  for (size_t s = 0; s < statements.size(); ++s) {
    RefOutcome ref_out = ref.Execute(statements[s]);
    std::vector<EngineOut> outs;
    outs.reserve(engines.size());
    for (auto& db : engines) outs.push_back(RunOnEngine(db.get(), statements[s]));
    std::string diff = CompareStatement(ref_out, configs, outs);
    if (!diff.empty()) {
      return Divergence{static_cast<int>(s), statements[s], std::move(diff)};
    }
  }

  // End-of-script base-table state check.
  for (const std::string& table : ref.TableNames()) {
    const std::vector<Row>* ref_rows = ref.TableRows(table);
    if (ref_rows == nullptr) continue;
    std::vector<std::string> want = RenderRows(*ref_rows);
    std::sort(want.begin(), want.end());
    for (size_t i = 0; i < engines.size(); ++i) {
      Result<ResultSet> rs = engines[i]->Query("SELECT * FROM " + table);
      if (!rs.ok()) {
        return Divergence{-1, "",
                          "end-of-script scan of '" + table + "' failed on " +
                              configs[i].Label() + ": " +
                              rs.status().ToString()};
      }
      std::vector<std::string> got = RenderRows(rs->rows);
      std::sort(got.begin(), got.end());
      if (got != want) {
        return Divergence{
            -1, "",
            "end-of-script state disagreement on table '" + table + "' with " +
                configs[i].Label() + ": reference " + Preview(want) +
                " vs engine " + Preview(got)};
      }
    }
  }
  return std::nullopt;
}

std::vector<std::string> MinimizeScript(
    const std::vector<std::string>& statements,
    const std::vector<EngineConfig>& configs) {
  std::vector<std::string> cur = statements;
  auto diverges = [&](const std::vector<std::string>& s) {
    return RunScript(s, configs).has_value();
  };
  if (!diverges(cur)) return cur;

  // Chunked passes first (fast shrink), then single statements until fixed
  // point: the result is 1-minimal.
  for (size_t chunk = std::max<size_t>(cur.size() / 2, 1);; chunk /= 2) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i + 1 <= cur.size();) {
        size_t n = std::min(chunk, cur.size() - i);
        std::vector<std::string> candidate = cur;
        candidate.erase(candidate.begin() + i, candidate.begin() + i + n);
        if (!candidate.empty() && diverges(candidate)) {
          cur = std::move(candidate);
          changed = true;
        } else {
          i += n;
        }
      }
    }
    if (chunk == 1) break;
  }
  return cur;
}

std::string RenderArtifact(const FuzzReport& report) {
  std::ostringstream os;
  os << "-- SQL/XNF differential fuzz artifact\n";
  os << "-- seed: " << report.seed << "\n";
  os << "-- replay: fuzz_runner --seed=" << report.seed << "\n";
  if (report.divergence.statement >= 0) {
    os << "-- divergence at statement " << report.divergence.statement
       << ": " << report.divergence.description << "\n";
  } else {
    os << "-- divergence: " << report.divergence.description << "\n";
  }
  os << "-- minimized reproducer (" << report.minimized.size()
     << " statements):\n";
  for (const std::string& s : report.minimized) os << s << ";\n";
  return os.str();
}

FuzzReport RunSeed(uint64_t seed, const GenOptions& gen,
                   const std::vector<EngineConfig>& configs) {
  FuzzReport report;
  report.seed = seed;
  FuzzCase c = GenerateCase(seed, gen);
  std::optional<Divergence> div = RunScript(c.statements, configs);
  if (!div.has_value()) return report;

  report.ok = false;
  report.minimized = MinimizeScript(c.statements, configs);
  std::optional<Divergence> min_div = RunScript(report.minimized, configs);
  report.divergence = min_div.has_value() ? *min_div : *div;

  if (const char* path = std::getenv("SQLXNF_FUZZ_ARTIFACT");
      path != nullptr && path[0] != '\0') {
    std::ofstream out(path, std::ios::app);
    if (out) {
      out << RenderArtifact(report) << "\n";
      report.artifact_path = path;
    }
  }
  return report;
}

}  // namespace xnf::testing
