#include "testing/reference.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "testing/reference_internal.h"

namespace xnf::testing {
namespace {

// First bare identifier of a statement, lowercased ("" if none). Mirrors the
// engine's dispatch in api/database.cc: a statement whose first token is
// "out" goes to the XNF path, everything else to the SQL parser.
std::string FirstWord(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::string word;
  while (i < text.size() &&
         (std::isalpha(static_cast<unsigned char>(text[i])) ||
          text[i] == '_')) {
    word.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(text[i]))));
    ++i;
  }
  return word;
}

}  // namespace

ReferenceEngine::ReferenceEngine() : state_(std::make_unique<refi::State>()) {}
ReferenceEngine::~ReferenceEngine() = default;

RefOutcome ReferenceEngine::Execute(const std::string& statement) {
  if (FirstWord(statement) == "out") {
    return refi::ExecuteXnfStatement(state_.get(), statement);
  }
  return refi::ExecuteSqlStatement(state_.get(), statement);
}

std::string ReferenceEngine::Canonicalize(const co::CoInstance& co) {
  // Convert to the reference CO shape and reuse its renderer so both sides
  // are formatted by exactly one code path.
  refi::RefCo ref;
  for (const co::CoNodeInstance& n : co.nodes) {
    refi::RefNode node;
    node.name = n.name;
    node.tuples = n.tuples;
    ref.nodes.push_back(std::move(node));
  }
  for (const co::CoRelInstance& r : co.rels) {
    refi::RefRel rel;
    rel.name = r.name;
    rel.parent_node = r.parent_node;
    rel.child_node = r.child_node;
    for (const co::CoConnection& c : r.connections) {
      refi::RefConn conn;
      conn.parent = c.parent;
      conn.child = c.child;
      conn.attrs = c.attrs;
      rel.conns.push_back(std::move(conn));
    }
    ref.rels.push_back(std::move(rel));
  }
  return refi::RenderCanonicalCo(ref);
}

std::vector<std::string> ReferenceEngine::TableNames() const {
  return state_->table_order;
}

const std::vector<Row>* ReferenceEngine::TableRows(
    const std::string& name) const {
  auto it = state_->tables.find(ToLower(name));
  if (it == state_->tables.end()) return nullptr;
  return &it->second.rows;
}

namespace refi {

int RefCo::NodeIndex(const std::string& name) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int RefCo::RelIndex(const std::string& name) const {
  for (size_t i = 0; i < rels.size(); ++i) {
    if (rels[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string RenderCanonicalCo(const RefCo& co) {
  std::string out;
  for (const RefNode& n : co.nodes) {
    out += "node " + n.name + "\n";
    std::vector<std::string> tuples;
    tuples.reserve(n.tuples.size());
    for (const Row& t : n.tuples) tuples.push_back(RowToString(t));
    std::sort(tuples.begin(), tuples.end());
    for (const std::string& t : tuples) out += "  " + t + "\n";
  }
  for (const RefRel& r : co.rels) {
    out += "rel " + r.name + "\n";
    // Connections are rendered by endpoint *content*, not tuple index:
    // tuple order (hence indices) varies across engine configurations, and
    // generated node tuples always include their unique key, so content is
    // an exact identity.
    std::vector<std::string> conns;
    conns.reserve(r.conns.size());
    const RefNode& p = co.nodes[r.parent_node];
    const RefNode& c = co.nodes[r.child_node];
    for (const RefConn& conn : r.conns) {
      conns.push_back(RowToString(p.tuples[conn.parent]) + "|" +
                      RowToString(c.tuples[conn.child]) + "|" +
                      RowToString(conn.attrs));
    }
    std::sort(conns.begin(), conns.end());
    for (const std::string& s : conns) out += "  " + s + "\n";
  }
  return out;
}

}  // namespace refi
}  // namespace xnf::testing
