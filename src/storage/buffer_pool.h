#ifndef XNF_STORAGE_BUFFER_POOL_H_
#define XNF_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/status.h"

namespace xnf {

// Identifies a page within the whole database: (file id, page number).
struct PageId {
  uint32_t file = 0;
  uint32_t page = 0;

  bool operator==(const PageId& other) const {
    return file == other.file && page == other.page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return (static_cast<size_t>(id.file) << 32) ^ id.page;
  }
};

// What a page stores. Accounting is split by kind so experiments can
// attribute faults: a CO-clustering run wants heap faults, a columnar scan
// wants column faults, and mixing them would blur both numbers. kIndex is
// reserved for paged indexes (the current in-memory indexes touch no
// pages, so its counters stay zero).
enum class PageKind { kHeap = 0, kIndex = 1, kColumn = 2 };
inline constexpr int kPageKindCount = 3;

// "heap" / "index" / "column".
const char* PageKindName(PageKind kind);

// Simulated buffer pool. The data itself always lives in memory; the pool
// only models which pages would be resident, so that page-fault counts
// faithfully reflect the I/O behaviour the paper's clustering discussion is
// about (see DESIGN.md, experiment C4). LRU replacement.
//
// Thread safety: Touch() is called concurrently by morsel workers during
// parallel scans. The counters are atomics and the LRU structures are
// mutex-guarded, so accesses/faults stay exact totals under any DOP. (For a
// *bounded* pool the fault count can depend on worker interleaving, because
// the LRU recency order does; the unbounded default — faults == distinct
// pages — is interleaving-independent.)
class BufferPool {
 public:
  // `capacity_pages` == 0 means unbounded (every page resident after first
  // touch; faults then equal the number of distinct pages).
  explicit BufferPool(size_t capacity_pages) : capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Records an access to `id`; counts a fault if it was not resident, under
  // both the total and the per-`kind` counters. Fails only under fault
  // injection: the `bufferpool.read` failpoint models a failed page read
  // (fires before any state change), and `bufferpool.evict` models a failed
  // write-back of the LRU victim (the new page is already resident and its
  // fault counted; the victim stays resident, leaving the pool transiently
  // over capacity — the invariant faults == resident + evictions holds on
  // both paths).
  Status Touch(PageId id, PageKind kind = PageKind::kHeap);

  // Pins exempt a page from eviction; they do not count an access or make
  // the page resident (the next Touch faults it in as usual). Morsel
  // workers pin their page range for the duration of the morsel. Unpin of
  // an unpinned page is a no-op. Pins nest (count per page).
  void Pin(PageId id);
  void Unpin(PageId id);
  // Range forms take the pool lock once for the whole range — morsel
  // workers pin dozens of pages at a time, and per-page locking is
  // measurable next to an in-memory scan.
  void PinRange(uint32_t file, uint32_t page_begin, uint32_t page_end);
  void UnpinRange(uint32_t file, uint32_t page_begin, uint32_t page_end);
  // Distinct pages currently pinned; 0 when the engine is quiescent.
  size_t pinned_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pins_.size();
  }
  // True while `id` holds at least one pin (debug pin-lifetime assertions).
  bool IsPinned(PageId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return pins_.count(id) > 0;
  }

  uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  // Pages pushed out by LRU replacement. Always 0 for an unbounded pool;
  // for a bounded pool faults = cold misses + re-faults on evicted pages,
  // so evictions tell the two apart.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  // Per-kind breakdowns. Each total above equals the sum over kinds (the
  // pair is incremented together under the same access).
  uint64_t accesses(PageKind kind) const {
    return by_kind_[static_cast<int>(kind)].accesses.load(
        std::memory_order_relaxed);
  }
  uint64_t faults(PageKind kind) const {
    return by_kind_[static_cast<int>(kind)].faults.load(
        std::memory_order_relaxed);
  }
  // Evictions are attributed to the *victim's* kind (the page written
  // back), not the kind of the access that forced it out.
  uint64_t evictions(PageKind kind) const {
    return by_kind_[static_cast<int>(kind)].evictions.load(
        std::memory_order_relaxed);
  }

  size_t resident_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_map_.size();
  }
  // Resident pages holding `kind` data (walks the residency map; meant for
  // the sqlxnf_bufferpool system view, not hot paths).
  size_t resident_pages(PageKind kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [id, r] : lru_map_) {
      if (r.kind == kind) ++n;
    }
    return n;
  }
  size_t capacity() const { return capacity_; }

  void ResetCounters() {
    accesses_.store(0, std::memory_order_relaxed);
    faults_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    for (KindCounters& k : by_kind_) {
      k.accesses.store(0, std::memory_order_relaxed);
      k.faults.store(0, std::memory_order_relaxed);
      k.evictions.store(0, std::memory_order_relaxed);
    }
  }

  // Drops all resident pages (cold cache) and keeps counters.
  void Clear();

 private:
  struct KindCounters {
    std::atomic<uint64_t> accesses{0};
    std::atomic<uint64_t> faults{0};
    std::atomic<uint64_t> evictions{0};
  };
  // A resident page remembers its kind so an eviction can be attributed to
  // the victim even though only the evicting access is in scope.
  struct Resident {
    std::list<PageId>::iterator it;
    PageKind kind = PageKind::kHeap;
  };

  size_t capacity_;
  std::atomic<uint64_t> accesses_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> evictions_{0};
  KindCounters by_kind_[kPageKindCount];
  mutable std::mutex mu_;  // guards lru_list_ / lru_map_ / pins_
  // Front = most recently used.
  std::list<PageId> lru_list_;
  std::unordered_map<PageId, Resident, PageIdHash> lru_map_;
  std::unordered_map<PageId, int, PageIdHash> pins_;  // page -> pin count
};

}  // namespace xnf

#endif  // XNF_STORAGE_BUFFER_POOL_H_
