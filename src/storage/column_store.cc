#include "storage/column_store.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace xnf {

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kRow:
      return "row";
    case StorageKind::kColumn:
      return "column";
  }
  return "?";
}

namespace {

// Point lookup into an RLE segment: walk the runs. Only used by the rare
// Read(rid) path; scans expand whole segments instead.
template <typename T>
T RleAt(const std::vector<T>& values, const std::vector<uint32_t>& lens,
        uint32_t slot) {
  uint32_t pos = 0;
  for (size_t r = 0; r < lens.size(); ++r) {
    pos += lens[r];
    if (slot < pos) return values[r];
  }
  return values.empty() ? T{} : values.back();
}

template <typename T>
void RleExpand(const std::vector<T>& values, const std::vector<uint32_t>& lens,
               std::vector<T>* out) {
  out->clear();
  for (size_t r = 0; r < values.size(); ++r) {
    out->insert(out->end(), lens[r], values[r]);
  }
}

// Compresses `plain` into (values, lens) runs. Returns the run count.
template <typename T>
size_t RleBuild(const std::vector<T>& plain, std::vector<T>* values,
                std::vector<uint32_t>* lens) {
  values->clear();
  lens->clear();
  for (const T& v : plain) {
    if (!values->empty() && values->back() == v) {
      ++lens->back();
    } else {
      values->push_back(v);
      lens->push_back(1);
    }
  }
  return values->size();
}

std::string RidStr(Rid rid) {
  return "(" + std::to_string(rid.page) + ", " + std::to_string(rid.slot) +
         ")";
}

}  // namespace

ColumnStore::ColumnStore(Schema schema, Options options)
    : schema_(std::move(schema)), options_(options) {
  if (options_.rows_per_group == 0) options_.rows_per_group = 1;
  if (options_.max_dict_entries == 0) options_.max_dict_entries = 1;
  if (options_.cluster_column >= 0 &&
      static_cast<size_t>(options_.cluster_column) >= schema_.size()) {
    options_.cluster_column = -1;  // catalog validates; belt and braces
  }
  dicts_.resize(schema_.size());
  if (options_.metrics != nullptr) {
    appends_ = options_.metrics->counter("storage.column.appends");
    group_reads_ = options_.metrics->counter("storage.column.group_reads");
    segment_views_ = options_.metrics->counter("storage.column.segment_views");
    rle_seals_ = options_.metrics->counter("storage.column.rle_seals");
    rle_unseals_ = options_.metrics->counter("storage.column.rle_unseals");
    dict_overflows_ =
        options_.metrics->counter("storage.column.dict_overflows");
  }
}

Status ColumnStore::TouchPage(uint32_t group, size_t column) const {
  if (options_.buffer_pool == nullptr) return Status::Ok();
  return options_.buffer_pool->Touch(
      PageId{options_.file_id, PageFor(group, column)}, PageKind::kColumn);
}

Status ColumnStore::TouchGroupPages(uint32_t group) const {
  for (size_t c = 0; c < schema_.size(); ++c) {
    XNF_RETURN_IF_ERROR(TouchPage(group, c));
  }
  return Status::Ok();
}

Status ColumnStore::CheckRowTypes(const Row& row) const {
  // Rows reaching storage already passed Schema::CheckAndCoerceRow, which
  // guarantees NULL-or-declared-type; anything else is an engine bug, not
  // a user error.
  if (row.size() != schema_.size()) {
    return Status::Internal("columnar insert arity " +
                            std::to_string(row.size()) + " vs schema " +
                            std::to_string(schema_.size()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    const Value& v = row[c];
    if (v.is_null()) continue;
    bool ok = false;
    switch (schema_.column(c).type) {
      case Type::kBool:
        ok = v.is_bool();
        break;
      case Type::kInt:
        ok = v.is_int();
        break;
      case Type::kDouble:
        ok = v.is_double();
        break;
      case Type::kString:
        ok = v.is_string();
        break;
      case Type::kNull:
        ok = false;
        break;
    }
    if (!ok) {
      return Status::Internal(
          std::string("uncoerced value of type ") + TypeName(v.type()) +
          " for " + TypeName(schema_.column(c).type) + " column '" +
          schema_.column(c).name + "'");
    }
  }
  return Status::Ok();
}

void ColumnStore::SetBit(std::vector<uint64_t>* bits, size_t i,
                         bool value) const {
  if (!value) {
    if (i >> 6 < bits->size()) (*bits)[i >> 6] &= ~(uint64_t{1} << (i & 63));
    return;
  }
  // Size for the whole group on first use (see header comment on GetBit).
  size_t group_words = (static_cast<size_t>(options_.rows_per_group) + 63) / 64;
  if (bits->size() < group_words) bits->resize(group_words, 0);
  (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
}

uint32_t ColumnStore::EncodeString(size_t column, const std::string& s,
                                   Segment* seg) {
  Dict& dict = dicts_[column];
  auto it = dict.index.find(s);
  if (it != dict.index.end()) return it->second;
  if (dict.values.size() < options_.max_dict_entries) {
    uint32_t code = static_cast<uint32_t>(dict.values.size());
    dict.values.push_back(s);
    dict.index.emplace(s, code);
    return code;
  }
  // Dictionary is full: fall back to segment-local storage. Exactness is
  // preserved; only the code-comparison kernel fast path gives up on this
  // column (see DictOverflowed).
  dict.overflowed = true;
  CounterAdd(dict_overflows_);
  uint32_t code = kOverflowBit | static_cast<uint32_t>(seg->overflow.size());
  seg->overflow.push_back(s);
  return code;
}

void ColumnStore::AppendToGroup(Group* g, const Row& row) {
  uint32_t slot = g->rows;
  for (size_t c = 0; c < row.size(); ++c) {
    Segment& seg = g->cols[c];
    const Value& v = row[c];
    if (v.is_null()) {
      SetBit(&seg.nulls, slot, true);
      // Keep the value lane dense with a placeholder so slot == index.
      switch (schema_.column(c).type) {
        case Type::kDouble:
          seg.doubles.push_back(0.0);
          break;
        case Type::kString:
          seg.codes.push_back(0);
          break;
        default:
          seg.ints.push_back(0);
          break;
      }
      continue;
    }
    switch (schema_.column(c).type) {
      case Type::kBool:
        seg.ints.push_back(v.AsBool() ? 1 : 0);
        break;
      case Type::kInt:
        seg.ints.push_back(v.AsInt());
        break;
      case Type::kDouble:
        seg.doubles.push_back(v.AsDouble());
        break;
      case Type::kString:
        seg.codes.push_back(EncodeString(c, v.AsString(), &seg));
        break;
      case Type::kNull:
        seg.ints.push_back(0);
        break;
    }
  }
  ++g->rows;
}

void ColumnStore::WriteInPlace(Group* g, uint32_t slot, const Row& row) {
  for (size_t c = 0; c < row.size(); ++c) {
    Segment& seg = g->cols[c];
    const Value& v = row[c];
    SetBit(&seg.nulls, slot, v.is_null());
    if (v.is_null()) continue;
    switch (schema_.column(c).type) {
      case Type::kBool:
        seg.ints[slot] = v.AsBool() ? 1 : 0;
        break;
      case Type::kInt:
        seg.ints[slot] = v.AsInt();
        break;
      case Type::kDouble:
        seg.doubles[slot] = v.AsDouble();
        break;
      case Type::kString:
        seg.codes[slot] = EncodeString(c, v.AsString(), &seg);
        break;
      case Type::kNull:
        break;
    }
  }
}

void ColumnStore::SealGroup(Group* g) {
  for (size_t c = 0; c < g->cols.size(); ++c) {
    Segment& seg = g->cols[c];
    if (seg.enc != Segment::Enc::kPlain) continue;
    if (!seg.nulls.empty()) continue;  // placeholder values would pollute runs
    Type t = schema_.column(c).type;
    if (t == Type::kInt || t == Type::kBool) {
      std::vector<int64_t> values;
      std::vector<uint32_t> lens;
      size_t runs = RleBuild(seg.ints, &values, &lens);
      // Only compress when it actually shrinks the segment (value + length
      // per run vs one value per row).
      if (runs != 0 && runs * 2 <= seg.ints.size()) {
        seg.rle_ints = std::move(values);
        seg.rle_lens = std::move(lens);
        seg.ints.clear();
        seg.ints.shrink_to_fit();
        seg.enc = Segment::Enc::kRle;
        CounterAdd(rle_seals_);
      }
    } else if (t == Type::kDouble) {
      std::vector<double> values;
      std::vector<uint32_t> lens;
      size_t runs = RleBuild(seg.doubles, &values, &lens);
      if (runs != 0 && runs * 2 <= seg.doubles.size()) {
        seg.rle_doubles = std::move(values);
        seg.rle_lens = std::move(lens);
        seg.doubles.clear();
        seg.doubles.shrink_to_fit();
        seg.enc = Segment::Enc::kRle;
        CounterAdd(rle_seals_);
      }
    }
  }
}

void ColumnStore::UnsealGroup(Group* g) {
  for (Segment& seg : g->cols) {
    if (seg.enc != Segment::Enc::kRle) continue;
    CounterAdd(rle_unseals_);
    if (!seg.rle_ints.empty()) {
      RleExpand(seg.rle_ints, seg.rle_lens, &seg.ints);
      seg.rle_ints.clear();
    } else {
      RleExpand(seg.rle_doubles, seg.rle_lens, &seg.doubles);
      seg.rle_doubles.clear();
    }
    seg.rle_lens.clear();
    seg.enc = Segment::Enc::kPlain;
  }
}

Value ColumnStore::ValueAt(const Group& g, size_t column,
                           uint32_t slot) const {
  const Segment& seg = g.cols[column];
  if (GetBit(seg.nulls, slot)) return Value::Null();
  switch (schema_.column(column).type) {
    case Type::kBool: {
      int64_t v = seg.enc == Segment::Enc::kRle
                      ? RleAt(seg.rle_ints, seg.rle_lens, slot)
                      : seg.ints[slot];
      return Value::Bool(v != 0);
    }
    case Type::kInt:
      return Value::Int(seg.enc == Segment::Enc::kRle
                            ? RleAt(seg.rle_ints, seg.rle_lens, slot)
                            : seg.ints[slot]);
    case Type::kDouble:
      return Value::Double(seg.enc == Segment::Enc::kRle
                               ? RleAt(seg.rle_doubles, seg.rle_lens, slot)
                               : seg.doubles[slot]);
    case Type::kString: {
      uint32_t code = seg.codes[slot];
      if ((code & kOverflowBit) != 0) {
        return Value::String(seg.overflow[code & ~kOverflowBit]);
      }
      return Value::String(dicts_[column].values[code]);
    }
    case Type::kNull:
      break;
  }
  return Value::Null();
}

Result<Rid> ColumnStore::Insert(Row row) {
  XNF_FAILPOINT("column.append");
  XNF_RETURN_IF_ERROR(CheckRowTypes(row));
  // Pick the target group. Unclustered tables append to the last group;
  // clustered tables route each row to the open group of its cluster-key
  // value (creating one if none is open), so a group only ever holds rows
  // of a single key and carries that key as its prunable tag.
  bool need_group;
  uint32_t group;
  const bool clustered = options_.cluster_column >= 0;
  if (clustered) {
    const Value& key = row[static_cast<size_t>(options_.cluster_column)];
    auto it = open_groups_.find(key);
    need_group = it == open_groups_.end();
    group = need_group ? static_cast<uint32_t>(groups_.size()) : it->second;
  } else {
    need_group =
        groups_.empty() || groups_.back().rows >= options_.rows_per_group;
    group = static_cast<uint32_t>(need_group ? groups_.size()
                                             : groups_.size() - 1);
  }
  // Buffer-pool page ids are group * num_columns + column in 32 bits
  // (PageFor, and the range arithmetic in Pin/UnpinRange): refuse to grow
  // past that space rather than letting ids wrap and collide across groups.
  if (need_group &&
      (static_cast<uint64_t>(groups_.size()) + 1) * schema_.size() >
          std::numeric_limits<uint32_t>::max()) {
    return Status::NotSupported("columnar table exceeds the 32-bit page-id space");
  }
  // Touch every column page of the target group before mutating so a pool
  // error (injected read failure, failed victim write-back) leaves the
  // store unchanged.
  XNF_RETURN_IF_ERROR(TouchGroupPages(group));
  if (need_group) {
    groups_.emplace_back();
    Group& fresh = groups_.back();
    fresh.cols.resize(schema_.size());
    if (clustered) {
      fresh.has_tag = true;
      fresh.tag = row[static_cast<size_t>(options_.cluster_column)];
      open_groups_.emplace(fresh.tag, group);
    }
  }
  Group& g = groups_[group];
  AppendToGroup(&g, row);
  ++live_count_;
  CounterAdd(appends_);
  if (g.rows >= options_.rows_per_group) {
    SealGroup(&g);
    if (clustered) {
      open_groups_.erase(row[static_cast<size_t>(options_.cluster_column)]);
    }
  }
  return Rid{group, g.rows - 1};
}

Result<Row> ColumnStore::Read(Rid rid) const {
  XNF_FAILPOINT("column.read");
  if (!IsLive(rid)) {
    return Status::NotFound("no live tuple at rid " + RidStr(rid));
  }
  XNF_RETURN_IF_ERROR(TouchGroupPages(rid.page));
  const Group& g = groups_[rid.page];
  Row row;
  row.reserve(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    row.push_back(ValueAt(g, c, rid.slot));
  }
  return row;
}

bool ColumnStore::IsLive(Rid rid) const {
  return rid.page < groups_.size() && rid.slot < groups_[rid.page].rows &&
         !GetBit(groups_[rid.page].tombstones, rid.slot);
}

Status ColumnStore::Update(Rid rid, Row row) {
  XNF_FAILPOINT("column.write");
  if (!IsLive(rid)) {
    return Status::NotFound("update of dead rid " + RidStr(rid));
  }
  XNF_RETURN_IF_ERROR(CheckRowTypes(row));
  XNF_RETURN_IF_ERROR(TouchGroupPages(rid.page));
  Group& g = groups_[rid.page];
  UnsealGroup(&g);
  WriteInPlace(&g, rid.slot, row);
  InvalidateTagOnWrite(&g, row);
  return Status::Ok();
}

Status ColumnStore::Delete(Rid rid) {
  XNF_FAILPOINT("column.write");
  if (!IsLive(rid)) {
    return Status::NotFound("delete of dead rid " + RidStr(rid));
  }
  // A delete only flips a tombstone bit in the group header, which lives
  // with the first column page — the value segments are untouched.
  XNF_RETURN_IF_ERROR(TouchPage(rid.page, 0));
  SetBit(&groups_[rid.page].tombstones, rid.slot, true);
  --live_count_;
  ++tombstones_;
  return Status::Ok();
}

Status ColumnStore::Restore(Rid rid, Row row) {
  XNF_FAILPOINT("column.write");
  if (rid.page >= groups_.size() || rid.slot >= groups_[rid.page].rows) {
    return Status::NotFound("restore of unknown rid " + RidStr(rid));
  }
  if (!GetBit(groups_[rid.page].tombstones, rid.slot)) {
    return Status::InvalidArgument("restore of a live slot");
  }
  XNF_RETURN_IF_ERROR(CheckRowTypes(row));
  XNF_RETURN_IF_ERROR(TouchGroupPages(rid.page));
  Group& g = groups_[rid.page];
  UnsealGroup(&g);
  WriteInPlace(&g, rid.slot, row);
  InvalidateTagOnWrite(&g, row);
  SetBit(&g.tombstones, rid.slot, false);
  ++live_count_;
  if (tombstones_ > 0) --tombstones_;
  return Status::Ok();
}

Status ColumnStore::Scan(
    const std::function<bool(Rid, const Row&)>& fn) const {
  return ScanRange(0, static_cast<uint32_t>(groups_.size()), fn);
}

Status ColumnStore::ScanRange(
    uint32_t page_begin, uint32_t page_end,
    const std::function<bool(Rid, const Row&)>& fn) const {
  page_end = std::min(page_end, static_cast<uint32_t>(groups_.size()));
  Row row(schema_.size());
  for (uint32_t gi = page_begin; gi < page_end; ++gi) {
    XNF_FAILPOINT("column.read");
    XNF_RETURN_IF_ERROR(TouchGroupPages(gi));
    const Group& g = groups_[gi];
    for (uint32_t s = 0; s < g.rows; ++s) {
      if (GetBit(g.tombstones, s)) continue;
      for (size_t c = 0; c < schema_.size(); ++c) {
        row[c] = ValueAt(g, c, s);
      }
      if (!fn(Rid{gi, s}, row)) return Status::Ok();
    }
  }
  return Status::Ok();
}

void ColumnStore::PinRange(uint32_t page_begin, uint32_t page_end) const {
  if (options_.buffer_pool == nullptr) return;
  page_end = std::min(page_end, static_cast<uint32_t>(groups_.size()));
  if (page_begin >= page_end) return;
  uint32_t ncols = static_cast<uint32_t>(schema_.size());
  options_.buffer_pool->PinRange(options_.file_id, page_begin * ncols,
                                 page_end * ncols);
}

void ColumnStore::UnpinRange(uint32_t page_begin, uint32_t page_end) const {
  if (options_.buffer_pool == nullptr) return;
  page_end = std::min(page_end, static_cast<uint32_t>(groups_.size()));
  if (page_begin >= page_end) return;
  uint32_t ncols = static_cast<uint32_t>(schema_.size());
  options_.buffer_pool->UnpinRange(options_.file_id, page_begin * ncols,
                                   page_end * ncols);
#ifndef NDEBUG
  // Pin-lifetime check: no ColumnView may outlive the pin protecting its
  // pages. Any group in the unpinned range still holding a view lease must
  // still be pinned through some other guard (pins nest).
  std::lock_guard<std::mutex> lock(lease_mu_);
  for (uint32_t g = page_begin; g < page_end; ++g) {
    auto it = view_leases_.find(g);
    if (it == view_leases_.end() || it->second == 0) continue;
    assert(options_.buffer_pool->IsPinned(
               PageId{options_.file_id, PageFor(g, 0)}) &&
           "live column view left unpinned (view outlives its morsel pin)");
  }
#endif
}

Status ColumnStore::ReadGroupInfo(uint32_t group, GroupInfo* out) const {
  XNF_FAILPOINT("column.read");
  if (group >= groups_.size()) {
    return Status::NotFound("no row group " + std::to_string(group));
  }
  XNF_RETURN_IF_ERROR(TouchPage(group, 0));
  const Group& g = groups_[group];
  out->rows = g.rows;
  out->tombstones = g.tombstones.empty() ? nullptr : g.tombstones.data();
  size_t dead = 0;
  if (!g.tombstones.empty()) {
    for (uint32_t s = 0; s < g.rows; ++s) {
      if (GetBit(g.tombstones, s)) ++dead;
    }
  }
  out->live = g.rows - dead;
  return Status::Ok();
}

Status ColumnStore::ViewColumn(uint32_t group, size_t column,
                               ViewScratch* scratch, ColumnView* out,
                               bool decode_values) const {
  XNF_FAILPOINT("column.read");
  if (group >= groups_.size() || column >= schema_.size()) {
    return Status::NotFound("no column segment (" + std::to_string(group) +
                            ", " + std::to_string(column) + ")");
  }
  XNF_RETURN_IF_ERROR(TouchPage(group, column));
  const Group& g = groups_[group];
  const Segment& seg = g.cols[column];
  *out = ColumnView{};
  out->type = schema_.column(column).type;
  out->rows = g.rows;
  out->nulls = seg.nulls.empty() ? nullptr : seg.nulls.data();
  if (!decode_values) return Status::Ok();
  switch (out->type) {
    case Type::kBool:
    case Type::kInt:
      if (seg.enc == Segment::Enc::kRle) {
        RleExpand(seg.rle_ints, seg.rle_lens, &scratch->ints);
        out->ints = scratch->ints.data();
      } else {
        out->ints = seg.ints.data();
      }
      break;
    case Type::kDouble:
      if (seg.enc == Segment::Enc::kRle) {
        RleExpand(seg.rle_doubles, seg.rle_lens, &scratch->doubles);
        out->doubles = scratch->doubles.data();
      } else {
        out->doubles = seg.doubles.data();
      }
      break;
    case Type::kString:
      out->codes = seg.codes.data();
      out->dict = &dicts_[column].values;
      out->overflow = &seg.overflow;
      break;
    case Type::kNull:
      break;
  }
  return Status::Ok();
}

Value ColumnStore::ViewValue(const ColumnView& view, size_t i) {
  if (view.IsNull(i)) return Value::Null();
  switch (view.type) {
    case Type::kBool:
      return Value::Bool(view.ints[i] != 0);
    case Type::kInt:
      return Value::Int(view.ints[i]);
    case Type::kDouble:
      return Value::Double(view.doubles[i]);
    case Type::kString: {
      uint32_t code = view.codes[i];
      if ((code & kOverflowBit) != 0) {
        return Value::String((*view.overflow)[code & ~kOverflowBit]);
      }
      return Value::String((*view.dict)[code]);
    }
    case Type::kNull:
      break;
  }
  return Value::Null();
}

std::optional<uint32_t> ColumnStore::DictCode(size_t column,
                                              const std::string& s) const {
  if (column >= dicts_.size()) return std::nullopt;
  auto it = dicts_[column].index.find(s);
  if (it == dicts_[column].index.end()) return std::nullopt;
  return it->second;
}

const std::vector<std::string>& ColumnStore::Dictionary(size_t column) const {
  return dicts_[column].values;
}

bool ColumnStore::DictOverflowed(size_t column) const {
  return column < dicts_.size() && dicts_[column].overflowed;
}

void ColumnStore::InvalidateTagOnWrite(Group* g, const Row& row) const {
  if (options_.cluster_column < 0 || !g->has_tag) return;
  const Value& v = row[static_cast<size_t>(options_.cluster_column)];
  if (v.TotalOrderCompare(g->tag) != 0) g->has_tag = false;
}

bool ColumnStore::ClusterTag(uint32_t group, Value* out) const {
  if (options_.cluster_column < 0 || group >= groups_.size()) return false;
  const Group& g = groups_[group];
  if (!g.has_tag) return false;
  *out = g.tag;
  return true;
}

#ifndef NDEBUG
void ColumnStore::AcquireViewLease(uint32_t group) const {
  std::lock_guard<std::mutex> lock(lease_mu_);
  ++view_leases_[group];
}

void ColumnStore::ReleaseViewLease(uint32_t group) const {
  std::lock_guard<std::mutex> lock(lease_mu_);
  auto it = view_leases_.find(group);
  assert(it != view_leases_.end() && it->second > 0 &&
         "view lease released without a matching acquire");
  if (--it->second == 0) view_leases_.erase(it);
}
#endif

ColumnStore::Compression ColumnStore::CompressionStats() const {
  Compression c;
  for (const Group& g : groups_) {
    for (const Segment& seg : g.cols) {
      if (seg.enc == Segment::Enc::kRle) {
        ++c.rle_segments;
      } else {
        ++c.plain_segments;
      }
      c.overflow_values += seg.overflow.size();
    }
  }
  for (const Dict& d : dicts_) c.dict_entries += d.values.size();
  return c;
}

}  // namespace xnf
