#include "storage/index.h"

#include "common/failpoint.h"

namespace xnf {

namespace {

bool KeyHasNull(const Row& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

}  // namespace

Status HashIndex::Insert(const Row& row, Rid rid) {
  XNF_FAILPOINT("index.insert");
  Row key = ExtractKey(row);
  if (KeyHasNull(key)) return Status::Ok();  // NULL keys are not indexed
  if (unique() && map_.find(key) != map_.end()) {
    return Status::AlreadyExists("duplicate key " + RowToString(key) +
                                 " in unique index '" + name() + "'");
  }
  map_.emplace(std::move(key), rid);
  return Status::Ok();
}

Status HashIndex::Erase(const Row& row, Rid rid) {
  XNF_FAILPOINT("index.erase");
  Row key = ExtractKey(row);
  auto range = map_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      break;
    }
  }
  return Status::Ok();
}

std::vector<Rid> HashIndex::Lookup(const Row& key) const {
  std::vector<Rid> out;
  if (KeyHasNull(key)) return out;
  auto range = map_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  return out;
}

Status OrderedIndex::Insert(const Row& row, Rid rid) {
  XNF_FAILPOINT("index.insert");
  Row key = ExtractKey(row);
  if (KeyHasNull(key)) return Status::Ok();
  if (unique() && map_.find(key) != map_.end()) {
    return Status::AlreadyExists("duplicate key " + RowToString(key) +
                                 " in unique index '" + name() + "'");
  }
  map_.emplace(std::move(key), rid);
  return Status::Ok();
}

Status OrderedIndex::Erase(const Row& row, Rid rid) {
  XNF_FAILPOINT("index.erase");
  Row key = ExtractKey(row);
  auto range = map_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      break;
    }
  }
  return Status::Ok();
}

std::vector<Rid> OrderedIndex::Lookup(const Row& key) const {
  std::vector<Rid> out;
  if (KeyHasNull(key)) return out;
  auto range = map_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<Rid> OrderedIndex::RangeLookup(const Row& lo, bool lo_inclusive,
                                           const Row& hi,
                                           bool hi_inclusive) const {
  std::vector<Rid> out;
  auto it = lo.empty() ? map_.begin()
                       : (lo_inclusive ? map_.lower_bound(lo)
                                       : map_.upper_bound(lo));
  auto end = hi.empty() ? map_.end()
                        : (hi_inclusive ? map_.upper_bound(hi)
                                        : map_.lower_bound(hi));
  for (; it != end; ++it) out.push_back(it->second);
  return out;
}

}  // namespace xnf
