#include "storage/buffer_pool.h"

#include "common/failpoint.h"

namespace xnf {

const char* PageKindName(PageKind kind) {
  switch (kind) {
    case PageKind::kHeap:
      return "heap";
    case PageKind::kIndex:
      return "index";
    case PageKind::kColumn:
      return "column";
  }
  return "?";
}

Status BufferPool::Touch(PageId id, PageKind kind) {
  XNF_FAILPOINT("bufferpool.read");
  KindCounters& kc = by_kind_[static_cast<int>(kind)];
  accesses_.fetch_add(1, std::memory_order_relaxed);
  kc.accesses.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lru_map_.find(id);
  if (it != lru_map_.end()) {
    // Hit: move to front.
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second.it);
    return Status::Ok();
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  kc.faults.fetch_add(1, std::memory_order_relaxed);
  lru_list_.push_front(id);
  lru_map_[id] = Resident{lru_list_.begin(), kind};
  if (capacity_ != 0 && lru_map_.size() > capacity_) {
    // Pick the least-recently-used unpinned victim. If every page is
    // pinned the pool runs over capacity until pins drain.
    auto victim = lru_list_.end();
    for (auto rit = lru_list_.rbegin(); rit != lru_list_.rend(); ++rit) {
      if (pins_.find(*rit) == pins_.end()) {
        victim = std::next(rit).base();
        break;
      }
    }
    if (victim != lru_list_.end()) {
      XNF_FAILPOINT("bufferpool.evict");
      auto vit = lru_map_.find(*victim);
      PageKind victim_kind = vit->second.kind;
      lru_map_.erase(vit);
      lru_list_.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      by_kind_[static_cast<int>(victim_kind)].evictions.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

void BufferPool::Pin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[id];
}

void BufferPool::Unpin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(id);
  if (it == pins_.end()) return;
  if (--it->second == 0) pins_.erase(it);
}

void BufferPool::PinRange(uint32_t file, uint32_t page_begin,
                          uint32_t page_end) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t p = page_begin; p < page_end; ++p) {
    ++pins_[PageId{file, p}];
  }
}

void BufferPool::UnpinRange(uint32_t file, uint32_t page_begin,
                            uint32_t page_end) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t p = page_begin; p < page_end; ++p) {
    auto it = pins_.find(PageId{file, p});
    if (it == pins_.end()) continue;
    if (--it->second == 0) pins_.erase(it);
  }
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_list_.clear();
  lru_map_.clear();
}

}  // namespace xnf
