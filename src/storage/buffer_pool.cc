#include "storage/buffer_pool.h"

namespace xnf {

void BufferPool::Touch(PageId id) {
  accesses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lru_map_.find(id);
  if (it != lru_map_.end()) {
    // Hit: move to front.
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second);
    return;
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  lru_list_.push_front(id);
  lru_map_[id] = lru_list_.begin();
  if (capacity_ != 0 && lru_map_.size() > capacity_) {
    PageId victim = lru_list_.back();
    lru_list_.pop_back();
    lru_map_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_list_.clear();
  lru_map_.clear();
}

}  // namespace xnf
