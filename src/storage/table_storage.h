#ifndef XNF_STORAGE_TABLE_STORAGE_H_
#define XNF_STORAGE_TABLE_STORAGE_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/value.h"

namespace xnf {

class ColumnStore;

// Record identifier: page number + slot within the page. Stable across
// updates; invalidated by delete. For the columnar store the "page" is the
// row-group index and the "slot" is the row's offset within the group, so
// rids stay dense and page-range morsels work identically for both layouts.
struct Rid {
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator<(const Rid& other) const {
    return page != other.page ? page < other.page : slot < other.slot;
  }
};

struct RidHash {
  size_t operator()(const Rid& r) const {
    return (static_cast<size_t>(r.page) << 32) ^ r.slot;
  }
};

// Physical layout of a base table. Selected per table with
// CREATE TABLE ... USING {row|column}; the catalog default applies
// otherwise.
enum class StorageKind { kRow, kColumn };

// "row" / "column".
const char* StorageKindName(StorageKind kind);

// Abstract physical storage of one table. The contract every engine layer
// (DML, undo log, index backfill, XNF cache fill, scans) is written
// against:
//
//   - Insert appends and returns a dense Rid; rids are assigned in append
//     order and Scan delivers live tuples in rid order, so scans over
//     different storage kinds are row-for-row identical streams.
//   - Delete tombstones (the rid stays addressable for Restore); Restore
//     revives a tombstoned rid with the supplied row (transaction
//     rollback).
//   - page_count() is the unit of ScanRange/PinRange: a morsel-driven
//     parallel scan splits [0, page_count()) and may run disjoint
//     ScanRange calls concurrently (implementations must be read-only
//     thread-safe there).
//   - Every accessor can fail under fault injection (the heap.* /
//     column.* failpoints and propagated bufferpool.* errors); a failed
//     call never leaves a partial page change behind.
class TableStorage {
 public:
  virtual ~TableStorage() = default;

  TableStorage() = default;
  TableStorage(const TableStorage&) = delete;
  TableStorage& operator=(const TableStorage&) = delete;
  TableStorage(TableStorage&&) = default;
  TableStorage& operator=(TableStorage&&) = default;

  virtual StorageKind kind() const = 0;

  // Non-null iff this table is columnar; the batch scan path downcasts
  // through here to reach the zero-copy column views.
  virtual const ColumnStore* AsColumnStore() const { return nullptr; }

  // Appends a row; returns its Rid.
  virtual Result<Rid> Insert(Row row) = 0;

  // Reads the row at `rid`. Fails with kNotFound for deleted/invalid rids.
  virtual Result<Row> Read(Rid rid) const = 0;

  // True iff `rid` refers to a live tuple.
  virtual bool IsLive(Rid rid) const = 0;

  // Replaces the row at `rid` in place.
  virtual Status Update(Rid rid, Row row) = 0;

  // Tombstones the row at `rid`.
  virtual Status Delete(Rid rid) = 0;

  // Revives a tombstoned slot with `row` (transaction rollback of a
  // delete). Fails if the slot never existed or is currently live.
  virtual Status Restore(Rid rid, Row row) = 0;

  // Calls `fn(rid, row)` for every live tuple in rid order; stops early if
  // `fn` returns false. Fails only if a page read fails (fault injection);
  // rows visited before the failure have been delivered.
  virtual Status Scan(const std::function<bool(Rid, const Row&)>& fn) const = 0;

  // Scan restricted to pages [page_begin, page_end) — the unit of a
  // morsel-driven parallel scan. ScanRange calls on disjoint ranges are
  // safe to run concurrently.
  virtual Status ScanRange(
      uint32_t page_begin, uint32_t page_end,
      const std::function<bool(Rid, const Row&)>& fn) const = 0;

  // Pins/unpins the buffer-pool pages backing [page_begin, page_end) so
  // concurrent scans cannot evict them mid-morsel; no-ops without a pool.
  virtual void PinRange(uint32_t page_begin, uint32_t page_end) const = 0;
  virtual void UnpinRange(uint32_t page_begin, uint32_t page_end) const = 0;

  virtual size_t live_count() const = 0;
  virtual size_t page_count() const = 0;
  virtual uint32_t file_id() const = 0;

  // Currently tombstoned slots (deleted, not yet restored). Observability
  // only — the sqlxnf_storage system view reports it per table.
  virtual size_t tombstone_count() const { return 0; }
};

}  // namespace xnf

#endif  // XNF_STORAGE_TABLE_STORAGE_H_
