#ifndef XNF_STORAGE_VIRTUAL_TABLE_H_
#define XNF_STORAGE_VIRTUAL_TABLE_H_

#include <vector>

#include "common/value.h"
#include "storage/table_storage.h"

namespace xnf {

// Read-only, fully materialized TableStorage over an in-memory row
// snapshot. This is how the sqlxnf_* system views enter the engine: the
// catalog re-snapshots the backing engine state once per statement epoch
// and wraps the rows in a VirtualTable, after which the planner, the morsel
// scan, joins, and ORDER BY treat it exactly like a base table.
//
// Deliberate non-behaviors:
//   - No buffer pool: scanning a system view must not perturb the very
//     fault/access counters it reports, so page_count() carves the rows
//     into virtual pages for morsel splitting but Touch is never called.
//   - No writes: Insert/Update/Delete/Restore fail with kNotUpdatable (the
//     DML layer rejects system tables earlier with a friendlier message;
//     this is the backstop for any path that slips through).
class VirtualTable : public TableStorage {
 public:
  VirtualTable(std::vector<Row> rows, uint32_t rows_per_page)
      : rows_(std::move(rows)),
        rows_per_page_(rows_per_page == 0 ? 1 : rows_per_page) {}

  StorageKind kind() const override { return StorageKind::kRow; }

  Result<Rid> Insert(Row row) override;
  Result<Row> Read(Rid rid) const override;
  bool IsLive(Rid rid) const override;
  Status Update(Rid rid, Row row) override;
  Status Delete(Rid rid) override;
  Status Restore(Rid rid, Row row) override;
  Status Scan(const std::function<bool(Rid, const Row&)>& fn) const override;
  Status ScanRange(uint32_t page_begin, uint32_t page_end,
                   const std::function<bool(Rid, const Row&)>& fn)
      const override;
  void PinRange(uint32_t page_begin, uint32_t page_end) const override {}
  void UnpinRange(uint32_t page_begin, uint32_t page_end) const override {}
  size_t live_count() const override { return rows_.size(); }
  size_t page_count() const override {
    return (rows_.size() + rows_per_page_ - 1) / rows_per_page_;
  }
  uint32_t file_id() const override { return 0; }

 private:
  std::vector<Row> rows_;
  size_t rows_per_page_;
};

}  // namespace xnf

#endif  // XNF_STORAGE_VIRTUAL_TABLE_H_
