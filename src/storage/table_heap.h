#ifndef XNF_STORAGE_TABLE_HEAP_H_
#define XNF_STORAGE_TABLE_HEAP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/buffer_pool.h"

namespace xnf {

// Record identifier: page number + slot within the page. Stable across
// updates; invalidated by delete.
struct Rid {
  uint32_t page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator<(const Rid& other) const {
    return page != other.page ? page < other.page : slot < other.slot;
  }
};

struct RidHash {
  size_t operator()(const Rid& r) const {
    return (static_cast<size_t>(r.page) << 32) ^ r.slot;
  }
};

// A slotted-page heap of rows for one table. Pages hold a fixed number of
// tuple slots (a simplification of byte-budgeted pages that keeps the paging
// behaviour, which is what the experiments need). All page accesses are
// reported to the optional BufferPool for fault accounting.
class TableHeap {
 public:
  struct Options {
    uint32_t tuples_per_page = 64;
    BufferPool* buffer_pool = nullptr;  // not owned; may be null
    uint32_t file_id = 0;               // identifies this heap in the pool
  };

  explicit TableHeap(Options options) : options_(options) {}
  TableHeap() : TableHeap(Options{}) {}

  TableHeap(const TableHeap&) = delete;
  TableHeap& operator=(const TableHeap&) = delete;
  TableHeap(TableHeap&&) = default;
  TableHeap& operator=(TableHeap&&) = default;

  // Appends a row; returns its Rid.
  Rid Insert(Row row);

  // Reads the row at `rid`. Fails with kNotFound for deleted/invalid rids.
  Result<Row> Read(Rid rid) const;

  // True iff `rid` refers to a live tuple.
  bool IsLive(Rid rid) const;

  // Replaces the row at `rid` in place.
  Status Update(Rid rid, Row row);

  // Tombstones the row at `rid`.
  Status Delete(Rid rid);

  // Revives a tombstoned slot with `row` (transaction rollback of a delete).
  // Fails if the slot never existed or is currently live.
  Status Restore(Rid rid, Row row);

  // Calls `fn(rid, row)` for every live tuple in page/slot order; stops early
  // if `fn` returns false.
  void Scan(const std::function<bool(Rid, const Row&)>& fn) const;

  // Scan restricted to pages [page_begin, page_end) — the unit of a
  // morsel-driven parallel scan. ScanRange calls on disjoint ranges are safe
  // to run concurrently (pages are only read; the buffer pool synchronizes
  // its own accounting).
  void ScanRange(uint32_t page_begin, uint32_t page_end,
                 const std::function<bool(Rid, const Row&)>& fn) const;

  size_t live_count() const { return live_count_; }
  size_t page_count() const { return pages_.size(); }
  uint32_t file_id() const { return options_.file_id; }

 private:
  struct Page {
    std::vector<std::optional<Row>> slots;
  };

  void TouchPage(uint32_t page) const {
    if (options_.buffer_pool != nullptr) {
      options_.buffer_pool->Touch(PageId{options_.file_id, page});
    }
  }

  Options options_;
  std::vector<Page> pages_;
  size_t live_count_ = 0;
};

}  // namespace xnf

#endif  // XNF_STORAGE_TABLE_HEAP_H_
