#ifndef XNF_STORAGE_TABLE_HEAP_H_
#define XNF_STORAGE_TABLE_HEAP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/buffer_pool.h"
#include "storage/table_storage.h"

namespace xnf {

class Counter;
class MetricsRegistry;

// A slotted-page heap of rows for one table: the row-store implementation
// of TableStorage. Pages hold a fixed number of tuple slots (a
// simplification of byte-budgeted pages that keeps the paging behaviour,
// which is what the experiments need). All page accesses are reported to
// the optional BufferPool for fault accounting.
//
// Every accessor can fail under fault injection: the `heap.append`,
// `heap.read`, and `heap.write` failpoints fire before any mutation, and
// pool Touch errors (`bufferpool.*` sites) propagate, so a failed call
// never leaves a partial page change behind.
class TableHeap : public TableStorage {
 public:
  struct Options {
    uint32_t tuples_per_page = 64;
    BufferPool* buffer_pool = nullptr;  // not owned; may be null
    uint32_t file_id = 0;               // identifies this heap in the pool
    // Engine metrics (storage.heap.* counters, shared across all heaps);
    // null = metrics off.
    MetricsRegistry* metrics = nullptr;
  };

  explicit TableHeap(Options options);
  TableHeap() : TableHeap(Options{}) {}

  TableHeap(const TableHeap&) = delete;
  TableHeap& operator=(const TableHeap&) = delete;
  TableHeap(TableHeap&&) = default;
  TableHeap& operator=(TableHeap&&) = default;

  StorageKind kind() const override { return StorageKind::kRow; }

  // Appends a row; returns its Rid.
  Result<Rid> Insert(Row row) override;

  // Reads the row at `rid`. Fails with kNotFound for deleted/invalid rids.
  Result<Row> Read(Rid rid) const override;

  // True iff `rid` refers to a live tuple.
  bool IsLive(Rid rid) const override;

  // Replaces the row at `rid` in place.
  Status Update(Rid rid, Row row) override;

  // Tombstones the row at `rid`.
  Status Delete(Rid rid) override;

  // Revives a tombstoned slot with `row` (transaction rollback of a delete).
  // Fails if the slot never existed or is currently live.
  Status Restore(Rid rid, Row row) override;

  // Calls `fn(rid, row)` for every live tuple in page/slot order; stops early
  // if `fn` returns false. Fails only if a page read fails (fault
  // injection); rows visited before the failure have been delivered.
  Status Scan(const std::function<bool(Rid, const Row&)>& fn) const override;

  // Scan restricted to pages [page_begin, page_end) — the unit of a
  // morsel-driven parallel scan. ScanRange calls on disjoint ranges are safe
  // to run concurrently (pages are only read; the buffer pool synchronizes
  // its own accounting).
  Status ScanRange(uint32_t page_begin, uint32_t page_end,
                   const std::function<bool(Rid, const Row&)>& fn)
      const override;

  // Pins/unpins pages [page_begin, page_end) in the buffer pool (no-ops
  // without a pool). Morsel workers pin their range for the duration of the
  // morsel so concurrent scans cannot evict pages under them; the unpin
  // must run on every exit path, including errors.
  void PinRange(uint32_t page_begin, uint32_t page_end) const override;
  void UnpinRange(uint32_t page_begin, uint32_t page_end) const override;

  size_t live_count() const override { return live_count_; }
  size_t page_count() const override { return pages_.size(); }
  uint32_t file_id() const override { return options_.file_id; }
  size_t tombstone_count() const override { return tombstones_; }

 private:
  struct Page {
    std::vector<std::optional<Row>> slots;
  };

  Status TouchPage(uint32_t page) const {
    if (options_.buffer_pool != nullptr) {
      return options_.buffer_pool->Touch(PageId{options_.file_id, page},
                                         PageKind::kHeap);
    }
    return Status::Ok();
  }

  Options options_;
  std::vector<Page> pages_;
  size_t live_count_ = 0;
  size_t tombstones_ = 0;
  // Resolved once at construction; null when metrics are off. Counters are
  // shared across all heaps (per-table detail lives in sqlxnf_storage).
  Counter* appends_ = nullptr;
  Counter* reads_ = nullptr;
  Counter* scan_pages_ = nullptr;
};

}  // namespace xnf

#endif  // XNF_STORAGE_TABLE_HEAP_H_
