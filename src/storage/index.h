#ifndef XNF_STORAGE_INDEX_H_
#define XNF_STORAGE_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/table_heap.h"

namespace xnf {

// Abstract secondary index over one or more columns of a table. Keys are the
// projected column values; entries map keys to Rids. Duplicates allowed
// (multi-map semantics) unless `unique` was requested at creation.
class Index {
 public:
  enum class Kind { kHash, kOrdered };

  Index(std::string name, std::vector<size_t> key_columns, bool unique)
      : name_(std::move(name)),
        key_columns_(std::move(key_columns)),
        unique_(unique) {}
  virtual ~Index() = default;

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }
  bool unique() const { return unique_; }
  virtual Kind kind() const = 0;

  // Extracts this index's key from a full table row.
  Row ExtractKey(const Row& row) const {
    Row key;
    key.reserve(key_columns_.size());
    for (size_t c : key_columns_) key.push_back(row[c]);
    return key;
  }

  // Inserts (key of `row`) -> rid. Fails on duplicate key if unique, or
  // when the `index.insert` failpoint fires (no entry is added).
  virtual Status Insert(const Row& row, Rid rid) = 0;
  // Removes the entry for (key of `row`, rid). Missing entries are ignored.
  // Fails only when the `index.erase` failpoint fires (entry retained).
  virtual Status Erase(const Row& row, Rid rid) = 0;

  // All rids whose key equals `key` exactly (NULL keys are never indexed for
  // lookup purposes: SQL equality with NULL is unknown).
  virtual std::vector<Rid> Lookup(const Row& key) const = 0;

  virtual size_t entry_count() const = 0;

 private:
  std::string name_;
  std::vector<size_t> key_columns_;
  bool unique_;
};

// Hash index: O(1) point lookups.
class HashIndex : public Index {
 public:
  using Index::Index;

  Kind kind() const override { return Kind::kHash; }
  Status Insert(const Row& row, Rid rid) override;
  Status Erase(const Row& row, Rid rid) override;
  std::vector<Rid> Lookup(const Row& key) const override;
  size_t entry_count() const override { return map_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  struct KeyEq {
    bool operator()(const Row& a, const Row& b) const {
      return RowsEqual(a, b);
    }
  };
  std::unordered_multimap<Row, Rid, KeyHash, KeyEq> map_;
};

// Ordered index: point lookups plus range scans, backed by a balanced tree.
class OrderedIndex : public Index {
 public:
  using Index::Index;

  Kind kind() const override { return Kind::kOrdered; }
  Status Insert(const Row& row, Rid rid) override;
  Status Erase(const Row& row, Rid rid) override;
  std::vector<Rid> Lookup(const Row& key) const override;
  size_t entry_count() const override { return map_.size(); }

  // Rids with lo <= key <= hi (either bound may be empty = unbounded).
  std::vector<Rid> RangeLookup(const Row& lo, bool lo_inclusive, const Row& hi,
                               bool hi_inclusive) const;

 private:
  struct KeyLess {
    bool operator()(const Row& a, const Row& b) const {
      return CompareRows(a, b) < 0;
    }
  };
  std::multimap<Row, Rid, KeyLess> map_;
};

}  // namespace xnf

#endif  // XNF_STORAGE_INDEX_H_
