#ifndef XNF_STORAGE_COLUMN_STORE_H_
#define XNF_STORAGE_COLUMN_STORE_H_

#include <cassert>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/buffer_pool.h"
#include "storage/table_storage.h"

namespace xnf {

class Counter;
class MetricsRegistry;

// Columnar implementation of TableStorage. Rows are grouped into fixed-size
// row groups (one group holds `rows_per_group` rows — the same tuple count
// a heap page holds, so Rid{group, offset} is dense and page-range morsels
// carry over unchanged). Within a group every column is a separate segment
// with its own buffer-pool page: page id = group * num_columns + column,
// tagged PageKind::kColumn. A scan that needs only k of n columns
// therefore touches k pages per group — the late-materialization win the
// fault counters measure.
//
// Per-column encodings:
//   - INT / BOOL segments store int64 arrays (BOOL as 0/1), DOUBLE
//     segments store double arrays.
//   - STRING columns are dictionary-encoded against a table-wide,
//     append-only, first-seen-order dictionary; segments store uint32
//     codes. When the dictionary reaches `max_dict_entries` the column
//     overflows: new distinct strings are stored per segment and addressed
//     with kOverflowBit-tagged codes (reads stay exact; only the
//     code-comparing fast path turns itself off).
//   - When a group fills, null-free numeric segments with enough repeated
//     adjacent values are RLE-compressed. Updates decompress the group
//     back to plain ("unsealing") before writing.
//   - NULLs live in a per-segment bitmap; deletes in a per-group tombstone
//     bitmap (stored with the group's first column page).
//
// Failpoints: `column.append` fires before Insert mutates,
// `column.write` before Update/Delete/Restore, and `column.read` on every
// group or column-view read. Pool Touch errors propagate. A failed call
// never leaves a partial change behind.
class ColumnStore : public TableStorage {
 public:
  struct Options {
    uint32_t rows_per_group = 64;       // rid.page = row-group index
    BufferPool* buffer_pool = nullptr;  // not owned; may be null
    uint32_t file_id = 0;
    // Per-column dictionary cap; pushing a column past it activates the
    // overflow fallback. Tests shrink this to force the corner.
    uint32_t max_dict_entries = 1u << 16;
    // Engine metrics (storage.column.* counters, shared across all columnar
    // tables); null = metrics off.
    MetricsRegistry* metrics = nullptr;
    // CLUSTER BY column index (-1 = unclustered). Clustered placement
    // routes each inserted row to the open row group of its cluster-key
    // value, so one composite object's node rows land in contiguous,
    // single-key groups and a scan filtered on the key can skip whole
    // groups by tag without touching their pages (see ClusterTag).
    int cluster_column = -1;
  };

  // `schema` supplies the per-column types the segments are laid out with.
  ColumnStore(Schema schema, Options options);

  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  StorageKind kind() const override { return StorageKind::kColumn; }
  const ColumnStore* AsColumnStore() const override { return this; }

  Result<Rid> Insert(Row row) override;
  Result<Row> Read(Rid rid) const override;
  bool IsLive(Rid rid) const override;
  Status Update(Rid rid, Row row) override;
  Status Delete(Rid rid) override;
  Status Restore(Rid rid, Row row) override;
  Status Scan(const std::function<bool(Rid, const Row&)>& fn) const override;
  Status ScanRange(uint32_t page_begin, uint32_t page_end,
                   const std::function<bool(Rid, const Row&)>& fn)
      const override;
  void PinRange(uint32_t page_begin, uint32_t page_end) const override;
  void UnpinRange(uint32_t page_begin, uint32_t page_end) const override;
  size_t live_count() const override { return live_count_; }
  size_t page_count() const override { return groups_.size(); }
  uint32_t file_id() const override { return options_.file_id; }
  size_t tombstone_count() const override { return tombstones_; }

  // --- Columnar access (the batch scan's zero-copy path) -----------------

  // Overflowed dictionary codes: (code & kOverflowBit) indexes the
  // segment's overflow list instead of the dictionary.
  static constexpr uint32_t kOverflowBit = 0x80000000u;

  // A decoded, read-only view of one column within one row group. For
  // plain segments the pointers alias segment storage (zero-copy); RLE
  // segments are expanded into the caller's scratch. Pointers stay valid
  // until the store is next mutated.
  struct ColumnView {
    Type type = Type::kNull;
    const int64_t* ints = nullptr;     // INT / BOOL (0/1) columns
    const double* doubles = nullptr;   // DOUBLE columns
    const uint32_t* codes = nullptr;   // STRING columns (dict codes)
    const std::vector<std::string>* dict = nullptr;      // for codes
    const std::vector<std::string>* overflow = nullptr;  // kOverflowBit codes
    const uint64_t* nulls = nullptr;   // bitmap, bit i set = row i NULL
    size_t rows = 0;

    bool IsNull(size_t i) const {
      return nulls != nullptr && ((nulls[i >> 6] >> (i & 63)) & 1) != 0;
    }
  };

  // Caller-owned decode buffer; reuse one per column across groups.
  struct ViewScratch {
    std::vector<int64_t> ints;
    std::vector<double> doubles;
  };

  struct GroupInfo {
    size_t rows = 0;                    // appended rows (incl. tombstoned)
    size_t live = 0;
    const uint64_t* tombstones = nullptr;  // bitmap; null = none
  };

  size_t num_columns() const { return schema_.size(); }
  const Schema& schema() const { return schema_; }

  // Reads a group's header (row count + tombstones): fires `column.read`
  // and touches the group's first column page. The scan path calls this
  // once per group even when no column is referenced (COUNT(*)).
  Status ReadGroupInfo(uint32_t group, GroupInfo* out) const;

  // Decodes one column of one group: fires `column.read` and touches that
  // column's page. `scratch` may be shared across calls for the same
  // column; when `decode_values` is false only type/nulls/rows are filled
  // (enough for IS NULL kernels — no RLE expansion).
  Status ViewColumn(uint32_t group, size_t column, ViewScratch* scratch,
                    ColumnView* out, bool decode_values = true) const;

  // Materializes one value out of a view (NULL-aware; strings decode
  // through the dictionary / overflow list).
  static Value ViewValue(const ColumnView& view, size_t i);

  // Read-path counters (storage.column.group_reads / .segment_views; null
  // when metrics are off). The scan morsel accumulates locally and flushes
  // through these once per morsel — a per-group atomic add in the read hot
  // path costs more than the whole metrics budget allows.
  Counter* group_reads_counter() const { return group_reads_; }
  Counter* segment_views_counter() const { return segment_views_; }

  // Dictionary introspection for the kernel planner: the code for `s` (if
  // the column ever stored it), the dictionary itself, and whether the
  // column overflowed (overflow disables code-comparison kernels).
  std::optional<uint32_t> DictCode(size_t column, const std::string& s) const;
  const std::vector<std::string>& Dictionary(size_t column) const;
  bool DictOverflowed(size_t column) const;

  // --- Clustered placement (CLUSTER BY) ----------------------------------

  // The CLUSTER BY column index, or -1 for an unclustered table.
  int cluster_column() const { return options_.cluster_column; }

  // The cluster tag of a group: the single cluster-key value every live row
  // in the group is known to hold. Returns false for unclustered tables,
  // unknown groups, and groups whose tag an in-place update invalidated
  // (such groups can no longer be pruned). Reads group metadata only — no
  // page touch, no failpoint — which is what makes tag-based group pruning
  // cheaper than reading the group.
  bool ClusterTag(uint32_t group, Value* out) const;

  // --- View leases (debug pin-lifetime checking) --------------------------
  //
  // A lease declares "column views of this group are live": ColBatch and
  // the scan morsel hold one per viewed group, and UnpinRange asserts (debug
  // builds) that unpinning never strips the last pin from a leased group —
  // i.e. no ColumnView outlives the pin that protects its pages from
  // eviction. Release builds compile these to nothing.
#ifndef NDEBUG
  void AcquireViewLease(uint32_t group) const;
  void ReleaseViewLease(uint32_t group) const;
#else
  void AcquireViewLease(uint32_t) const {}
  void ReleaseViewLease(uint32_t) const {}
#endif

  // Encoding statistics (tests, benchmarks).
  struct Compression {
    uint64_t rle_segments = 0;    // currently RLE-encoded segments
    uint64_t plain_segments = 0;  // materialized (non-RLE) segments
    uint64_t dict_entries = 0;    // across all column dictionaries
    uint64_t overflow_values = 0; // strings stored outside a dictionary
  };
  Compression CompressionStats() const;

 private:
  struct Segment {
    enum class Enc { kPlain, kRle };
    Enc enc = Enc::kPlain;
    std::vector<int64_t> ints;       // INT / BOOL, plain
    std::vector<double> doubles;     // DOUBLE, plain
    std::vector<uint32_t> codes;     // STRING (always plain)
    std::vector<std::string> overflow;
    std::vector<int64_t> rle_ints;   // RLE runs (values)
    std::vector<double> rle_doubles;
    std::vector<uint32_t> rle_lens;  // RLE runs (lengths)
    std::vector<uint64_t> nulls;     // empty = no NULLs in segment
  };
  struct Group {
    std::vector<Segment> cols;
    std::vector<uint64_t> tombstones;  // empty = no deletes in group
    uint32_t rows = 0;
    // Clustered tables: the cluster-key value this group was created for.
    // Invalidated (has_tag = false) when an in-place write stores a
    // different key value into the group.
    bool has_tag = false;
    Value tag;
  };
  struct Dict {
    std::vector<std::string> values;
    std::unordered_map<std::string, uint32_t> index;
    bool overflowed = false;
  };

  // Page ids are group-major; Insert refuses to create a group whose pages
  // would not fit uint32, so the 64-bit product here can never truncate
  // (wrapped ids would collide across groups in the buffer pool's
  // residency/pin maps).
  uint32_t PageFor(uint32_t group, size_t column) const {
    uint64_t page = static_cast<uint64_t>(group) * schema_.size() + column;
    assert(page <= std::numeric_limits<uint32_t>::max());
    return static_cast<uint32_t>(page);
  }
  Status TouchPage(uint32_t group, size_t column) const;
  Status TouchGroupPages(uint32_t group) const;  // all columns
  Status CheckRowTypes(const Row& row) const;
  void AppendToGroup(Group* g, const Row& row);
  void WriteInPlace(Group* g, uint32_t slot, const Row& row);
  void SealGroup(Group* g);    // attempt RLE on full, null-free segments
  void UnsealGroup(Group* g);  // expand RLE back to plain before writes
  uint32_t EncodeString(size_t column, const std::string& s, Segment* seg);
  Value ValueAt(const Group& g, size_t column, uint32_t slot) const;
  // Drops a clustered group's tag when an in-place write stores a different
  // cluster-key value into it (the group is then mixed-key and unprunable;
  // it stays routable through open_groups_ under its original key).
  void InvalidateTagOnWrite(Group* g, const Row& row) const;

  static bool GetBit(const std::vector<uint64_t>& bits, size_t i) {
    size_t w = i >> 6;
    return w < bits.size() && ((bits[w] >> (i & 63)) & 1) != 0;
  }
  // Bitmaps are empty (no bits set) or sized for a full group, so view
  // consumers can index any row without bounds checks.
  void SetBit(std::vector<uint64_t>* bits, size_t i, bool value) const;

  // Deterministic canonical ordering for cluster keys (open_groups_):
  // identical inserts always produce identical placement.
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.TotalOrderCompare(b) < 0;
    }
  };

  Schema schema_;
  Options options_;
  std::vector<Group> groups_;
  std::vector<Dict> dicts_;  // one per column; used by STRING columns only
  // Clustered tables: cluster-key value -> index of its open (unfilled)
  // group. Entries leave the map when their group fills.
  std::map<Value, uint32_t, ValueLess> open_groups_;
  size_t live_count_ = 0;
  size_t tombstones_ = 0;
#ifndef NDEBUG
  mutable std::mutex lease_mu_;
  mutable std::unordered_map<uint32_t, int> view_leases_;  // group -> count
#endif
  // Resolved once at construction; null when metrics are off. Counters are
  // shared across all columnar tables (per-table detail lives in
  // sqlxnf_storage).
  Counter* appends_ = nullptr;
  Counter* group_reads_ = nullptr;
  Counter* segment_views_ = nullptr;
  Counter* rle_seals_ = nullptr;
  Counter* rle_unseals_ = nullptr;
  Counter* dict_overflows_ = nullptr;
};

}  // namespace xnf

#endif  // XNF_STORAGE_COLUMN_STORE_H_
