#include "storage/table_heap.h"

#include <algorithm>

namespace xnf {

Rid TableHeap::Insert(Row row) {
  if (pages_.empty() ||
      pages_.back().slots.size() >= options_.tuples_per_page) {
    pages_.emplace_back();
  }
  uint32_t page = static_cast<uint32_t>(pages_.size() - 1);
  TouchPage(page);
  Page& p = pages_.back();
  p.slots.push_back(std::move(row));
  ++live_count_;
  return Rid{page, static_cast<uint32_t>(p.slots.size() - 1)};
}

Result<Row> TableHeap::Read(Rid rid) const {
  if (rid.page >= pages_.size() ||
      rid.slot >= pages_[rid.page].slots.size() ||
      !pages_[rid.page].slots[rid.slot].has_value()) {
    return Status::NotFound("no live tuple at rid (" +
                            std::to_string(rid.page) + ", " +
                            std::to_string(rid.slot) + ")");
  }
  TouchPage(rid.page);
  return *pages_[rid.page].slots[rid.slot];
}

bool TableHeap::IsLive(Rid rid) const {
  return rid.page < pages_.size() &&
         rid.slot < pages_[rid.page].slots.size() &&
         pages_[rid.page].slots[rid.slot].has_value();
}

Status TableHeap::Update(Rid rid, Row row) {
  if (!IsLive(rid)) {
    return Status::NotFound("update of dead rid (" + std::to_string(rid.page) +
                            ", " + std::to_string(rid.slot) + ")");
  }
  TouchPage(rid.page);
  pages_[rid.page].slots[rid.slot] = std::move(row);
  return Status::Ok();
}

Status TableHeap::Delete(Rid rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("delete of dead rid (" + std::to_string(rid.page) +
                            ", " + std::to_string(rid.slot) + ")");
  }
  TouchPage(rid.page);
  pages_[rid.page].slots[rid.slot].reset();
  --live_count_;
  return Status::Ok();
}

Status TableHeap::Restore(Rid rid, Row row) {
  if (rid.page >= pages_.size() ||
      rid.slot >= pages_[rid.page].slots.size()) {
    return Status::NotFound("restore of unknown rid (" +
                            std::to_string(rid.page) + ", " +
                            std::to_string(rid.slot) + ")");
  }
  if (pages_[rid.page].slots[rid.slot].has_value()) {
    return Status::InvalidArgument("restore of a live slot");
  }
  TouchPage(rid.page);
  pages_[rid.page].slots[rid.slot] = std::move(row);
  ++live_count_;
  return Status::Ok();
}

void TableHeap::Scan(const std::function<bool(Rid, const Row&)>& fn) const {
  ScanRange(0, static_cast<uint32_t>(pages_.size()), fn);
}

void TableHeap::ScanRange(
    uint32_t page_begin, uint32_t page_end,
    const std::function<bool(Rid, const Row&)>& fn) const {
  page_end = std::min(page_end, static_cast<uint32_t>(pages_.size()));
  for (uint32_t p = page_begin; p < page_end; ++p) {
    TouchPage(p);
    const Page& page = pages_[p];
    for (uint32_t s = 0; s < page.slots.size(); ++s) {
      if (!page.slots[s].has_value()) continue;
      if (!fn(Rid{p, s}, *page.slots[s])) return;
    }
  }
}

}  // namespace xnf
