#include "storage/table_heap.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace xnf {

TableHeap::TableHeap(Options options) : options_(options) {
  if (options_.metrics != nullptr) {
    appends_ = options_.metrics->counter("storage.heap.appends");
    reads_ = options_.metrics->counter("storage.heap.reads");
    scan_pages_ = options_.metrics->counter("storage.heap.scan_pages");
  }
}

Result<Rid> TableHeap::Insert(Row row) {
  XNF_FAILPOINT("heap.append");
  // Touch the target page before mutating so a pool error (injected read
  // failure, failed victim write-back) leaves the heap unchanged.
  bool need_page = pages_.empty() ||
                   pages_.back().slots.size() >= options_.tuples_per_page;
  uint32_t page = static_cast<uint32_t>(need_page ? pages_.size()
                                                  : pages_.size() - 1);
  XNF_RETURN_IF_ERROR(TouchPage(page));
  if (need_page) pages_.emplace_back();
  Page& p = pages_.back();
  p.slots.push_back(std::move(row));
  ++live_count_;
  CounterAdd(appends_);
  return Rid{page, static_cast<uint32_t>(p.slots.size() - 1)};
}

Result<Row> TableHeap::Read(Rid rid) const {
  XNF_FAILPOINT("heap.read");
  if (rid.page >= pages_.size() ||
      rid.slot >= pages_[rid.page].slots.size() ||
      !pages_[rid.page].slots[rid.slot].has_value()) {
    return Status::NotFound("no live tuple at rid (" +
                            std::to_string(rid.page) + ", " +
                            std::to_string(rid.slot) + ")");
  }
  XNF_RETURN_IF_ERROR(TouchPage(rid.page));
  CounterAdd(reads_);
  return *pages_[rid.page].slots[rid.slot];
}

bool TableHeap::IsLive(Rid rid) const {
  return rid.page < pages_.size() &&
         rid.slot < pages_[rid.page].slots.size() &&
         pages_[rid.page].slots[rid.slot].has_value();
}

Status TableHeap::Update(Rid rid, Row row) {
  XNF_FAILPOINT("heap.write");
  if (!IsLive(rid)) {
    return Status::NotFound("update of dead rid (" + std::to_string(rid.page) +
                            ", " + std::to_string(rid.slot) + ")");
  }
  XNF_RETURN_IF_ERROR(TouchPage(rid.page));
  pages_[rid.page].slots[rid.slot] = std::move(row);
  return Status::Ok();
}

Status TableHeap::Delete(Rid rid) {
  XNF_FAILPOINT("heap.write");
  if (!IsLive(rid)) {
    return Status::NotFound("delete of dead rid (" + std::to_string(rid.page) +
                            ", " + std::to_string(rid.slot) + ")");
  }
  XNF_RETURN_IF_ERROR(TouchPage(rid.page));
  pages_[rid.page].slots[rid.slot].reset();
  --live_count_;
  ++tombstones_;
  return Status::Ok();
}

Status TableHeap::Restore(Rid rid, Row row) {
  XNF_FAILPOINT("heap.write");
  if (rid.page >= pages_.size() ||
      rid.slot >= pages_[rid.page].slots.size()) {
    return Status::NotFound("restore of unknown rid (" +
                            std::to_string(rid.page) + ", " +
                            std::to_string(rid.slot) + ")");
  }
  if (pages_[rid.page].slots[rid.slot].has_value()) {
    return Status::InvalidArgument("restore of a live slot");
  }
  XNF_RETURN_IF_ERROR(TouchPage(rid.page));
  pages_[rid.page].slots[rid.slot] = std::move(row);
  ++live_count_;
  if (tombstones_ > 0) --tombstones_;
  return Status::Ok();
}

Status TableHeap::Scan(const std::function<bool(Rid, const Row&)>& fn) const {
  return ScanRange(0, static_cast<uint32_t>(pages_.size()), fn);
}

Status TableHeap::ScanRange(
    uint32_t page_begin, uint32_t page_end,
    const std::function<bool(Rid, const Row&)>& fn) const {
  page_end = std::min(page_end, static_cast<uint32_t>(pages_.size()));
  // Accumulate the page count locally and flush one atomic add at the end:
  // a per-page add is measurable on full-table scans over small pages.
  uint64_t pages_scanned = 0;
  for (uint32_t p = page_begin; p < page_end; ++p) {
    XNF_RETURN_IF_ERROR(TouchPage(p));
    ++pages_scanned;
    const Page& page = pages_[p];
    for (uint32_t s = 0; s < page.slots.size(); ++s) {
      if (!page.slots[s].has_value()) continue;
      if (!fn(Rid{p, s}, *page.slots[s])) {
        CounterAdd(scan_pages_, pages_scanned);
        return Status::Ok();
      }
    }
  }
  CounterAdd(scan_pages_, pages_scanned);
  return Status::Ok();
}

void TableHeap::PinRange(uint32_t page_begin, uint32_t page_end) const {
  if (options_.buffer_pool == nullptr) return;
  page_end = std::min(page_end, static_cast<uint32_t>(pages_.size()));
  options_.buffer_pool->PinRange(options_.file_id, page_begin, page_end);
}

void TableHeap::UnpinRange(uint32_t page_begin, uint32_t page_end) const {
  if (options_.buffer_pool == nullptr) return;
  page_end = std::min(page_end, static_cast<uint32_t>(pages_.size()));
  options_.buffer_pool->UnpinRange(options_.file_id, page_begin, page_end);
}

}  // namespace xnf
