#include "storage/virtual_table.h"

#include <algorithm>

namespace xnf {

namespace {

Status ReadOnly() {
  return Status::NotUpdatable("system views are read-only");
}

}  // namespace

Result<Rid> VirtualTable::Insert(Row /*row*/) { return ReadOnly(); }

Result<Row> VirtualTable::Read(Rid rid) const {
  size_t i = static_cast<size_t>(rid.page) * rows_per_page_ + rid.slot;
  if (rid.slot >= rows_per_page_ || i >= rows_.size()) {
    return Status::NotFound("no tuple at the given rid");
  }
  return rows_[i];
}

bool VirtualTable::IsLive(Rid rid) const {
  size_t i = static_cast<size_t>(rid.page) * rows_per_page_ + rid.slot;
  return rid.slot < rows_per_page_ && i < rows_.size();
}

Status VirtualTable::Update(Rid /*rid*/, Row /*row*/) { return ReadOnly(); }
Status VirtualTable::Delete(Rid /*rid*/) { return ReadOnly(); }
Status VirtualTable::Restore(Rid /*rid*/, Row /*row*/) { return ReadOnly(); }

Status VirtualTable::Scan(
    const std::function<bool(Rid, const Row&)>& fn) const {
  return ScanRange(0, static_cast<uint32_t>(page_count()), fn);
}

Status VirtualTable::ScanRange(
    uint32_t page_begin, uint32_t page_end,
    const std::function<bool(Rid, const Row&)>& fn) const {
  size_t begin = static_cast<size_t>(page_begin) * rows_per_page_;
  size_t end = std::min(rows_.size(),
                        static_cast<size_t>(page_end) * rows_per_page_);
  for (size_t i = begin; i < end; ++i) {
    Rid rid{static_cast<uint32_t>(i / rows_per_page_),
            static_cast<uint32_t>(i % rows_per_page_)};
    if (!fn(rid, rows_[i])) return Status::Ok();
  }
  return Status::Ok();
}

}  // namespace xnf
